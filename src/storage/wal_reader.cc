#include "storage/wal_reader.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>

#include "common/crc32c.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ensemfdet {
namespace storage {

namespace {

struct WalReaderMetrics {
  obs::Counter* records_replayed_total;
  obs::Counter* torn_tails_total;
  obs::Histogram* replay_seconds;
};

WalReaderMetrics& Metrics() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static WalReaderMetrics m{
      reg.GetCounter("ensemfdet_wal_records_replayed_total"),
      reg.GetCounter("ensemfdet_wal_torn_tails_total"),
      reg.GetHistogram("ensemfdet_wal_replay_seconds"),
  };
  return m;
}

Status Corrupt(const std::string& what) {
  return Status::IOError("corrupt WAL: " + what);
}

uint64_t AlignUpRecord(uint64_t offset) {
  return (offset + kWalRecordAlignment - 1) & ~(kWalRecordAlignment - 1);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path + " for reading");
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("cannot read " + path);
  return data;
}

/// Per-segment parse result; see ParseSegment.
struct SegmentParse {
  uint64_t first_seq = 0;
  uint64_t next_seq = 0;  ///< last valid record seq + 1 (first_seq if none)
  uint64_t valid_bytes = 0;
  bool header_valid = false;
  bool torn_tail = false;
  uint64_t records = 0;
};

/// Validates one segment buffer. Frame failures at the tail of the last
/// segment set torn_tail and stop; anywhere else they are IOError. A
/// CRC-valid frame that lies (seq off the chain, length above the cap,
/// first_seq not matching the filename) is always IOError — a torn write
/// cannot forge a valid CRC. `on_record` (optional) sees every valid
/// record in order.
Result<SegmentParse> ParseSegment(
    const std::string& path, std::string_view data, bool is_last,
    uint64_t filename_first_seq,
    const std::function<Status(const WalRecordView&)>* on_record) {
  SegmentParse out;
  out.first_seq = filename_first_seq;
  out.next_seq = filename_first_seq;

  // Segment header. A short or rotted header in the last segment is the
  // wreck of an interrupted segment creation: no record can follow it, so
  // the whole file is a torn tail.
  WalSegmentHeader header;
  bool header_ok = data.size() >= sizeof(header);
  if (header_ok) {
    std::memcpy(&header, data.data(), sizeof(header));
    header_ok = Crc32cUnmask(header.header_crc) ==
                Crc32c(&header, sizeof(header) - sizeof(uint32_t));
  }
  if (!header_ok) {
    if (!is_last) {
      return Corrupt(path + " has an invalid segment header");
    }
    out.torn_tail = true;
    return out;
  }
  if (header.magic != kWalMagic) {
    return Corrupt(path + " has wrong magic (not a .efw WAL segment)");
  }
  if (header.endian_tag != kEndianTag) {
    return Corrupt(path + " was written with a different byte order");
  }
  if (header.schema_version != kWalSchemaVersion) {
    return Status::FailedPrecondition(
        "WAL schema version skew: " + path + " is v" +
        std::to_string(header.schema_version) + ", this reader speaks v" +
        std::to_string(kWalSchemaVersion));
  }
  if (header.first_seq != filename_first_seq) {
    return Corrupt(path + " header first_seq " +
                   std::to_string(header.first_seq) +
                   " does not match its file name");
  }
  if (header.first_seq == 0) {
    return Corrupt(path + " claims first_seq 0 (seqs start at 1)");
  }
  out.header_valid = true;
  out.valid_bytes = sizeof(header);

  uint64_t offset = sizeof(header);
  uint64_t expected_seq = header.first_seq;
  const uint64_t size = data.size();
  while (offset < size) {
    // Frame-level failures from here to the payload CRC are what an
    // interrupted append leaves behind — torn-tail rule applies.
    WalRecordHeader record;
    bool frame_ok = size - offset >= sizeof(record);
    if (frame_ok) {
      std::memcpy(&record, data.data() + offset, sizeof(record));
      frame_ok = Crc32cUnmask(record.header_crc) ==
                 Crc32c(&record, sizeof(record) - sizeof(uint32_t));
    }
    if (frame_ok && record.payload_length > kWalMaxPayloadBytes) {
      // CRC-valid but over the format cap: our writer never produced it.
      return Corrupt(path + " record at offset " + std::to_string(offset) +
                     " declares " + std::to_string(record.payload_length) +
                     " payload bytes, above the format cap");
    }
    if (frame_ok) {
      // u64 arithmetic: payload_length <= 2^30, offsets <= file size.
      frame_ok = offset + sizeof(record) + record.payload_length <= size;
    }
    const std::byte* payload =
        reinterpret_cast<const std::byte*>(data.data()) + offset +
        sizeof(record);
    if (frame_ok) {
      frame_ok = Crc32cUnmask(record.payload_crc) ==
                 Crc32c(payload, record.payload_length);
    }
    if (!frame_ok) {
      if (!is_last) {
        return Corrupt(path + " has an invalid record at offset " +
                       std::to_string(offset) +
                       " before the log tail — acked history is damaged");
      }
      out.torn_tail = true;
      return out;
    }
    if (record.seq != expected_seq) {
      return Corrupt(path + " record at offset " + std::to_string(offset) +
                     " has seq " + std::to_string(record.seq) +
                     ", expected " + std::to_string(expected_seq) +
                     " — records were reordered, duplicated, or lost");
    }
    if (on_record != nullptr) {
      WalRecordView view;
      view.seq = record.seq;
      view.timestamp = record.timestamp;
      view.payload = std::span<const std::byte>(payload,
                                                record.payload_length);
      ENSEMFDET_RETURN_NOT_OK((*on_record)(view));
    }
    ++expected_seq;
    ++out.records;
    // Advance next_seq per record, not once after the loop: a torn-tail
    // return mid-scan must still report every record before the tear, or
    // a reopened writer would restart the chain at first_seq and write
    // duplicate seqs over acked history.
    out.next_seq = expected_seq;
    offset = AlignUpRecord(offset + sizeof(record) + record.payload_length);
    // A final record whose padding the crash cut short still parsed
    // fully; clamp so valid_bytes never exceeds the file.
    out.valid_bytes = std::min<uint64_t>(offset, size);
  }
  return out;
}

struct ListedSegment {
  std::string path;
  uint64_t first_seq = 0;
};

Result<std::vector<ListedSegment>> ListSegments(const std::string& dir) {
  std::vector<ListedSegment> segments;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return segments;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t first_seq = 0;
    const std::string name = entry.path().filename().string();
    if (ParseWalSegmentFileName(name, &first_seq)) {
      segments.push_back({entry.path().string(), first_seq});
    }
  }
  if (ec) {
    return Status::IOError("cannot list WAL directory " + dir + ": " +
                           ec.message());
  }
  std::sort(segments.begin(), segments.end(),
            [](const ListedSegment& a, const ListedSegment& b) {
              return a.first_seq < b.first_seq;
            });
  return segments;
}

/// The shared walk under ReplayWal and ScanWalDir: chains the segments,
/// parses each, and fills a WalDirState. `on_record` may be null.
Result<WalDirState> WalkWalDir(
    const std::string& dir,
    const std::function<Status(const WalRecordView&)>* on_record,
    uint64_t* records_scanned) {
  WalDirState state;
  ENSEMFDET_ASSIGN_OR_RETURN(std::vector<ListedSegment> listed,
                             ListSegments(dir));
  for (size_t i = 0; i < listed.size(); ++i) {
    const bool is_last = i + 1 == listed.size();
    ENSEMFDET_ASSIGN_OR_RETURN(std::string data,
                               ReadFileToString(listed[i].path));
    if (i > 0 && listed[i].first_seq != state.next_seq) {
      return Corrupt(listed[i].path + " starts at seq " +
                     std::to_string(listed[i].first_seq) +
                     " but the previous segment ended at seq " +
                     std::to_string(state.next_seq - 1) +
                     " — a segment is missing or reordered");
    }
    ENSEMFDET_ASSIGN_OR_RETURN(
        SegmentParse parsed,
        ParseSegment(listed[i].path, data, is_last, listed[i].first_seq,
                     on_record));
    state.segments.push_back({listed[i].path, listed[i].first_seq});
    state.next_seq = parsed.next_seq;
    if (records_scanned != nullptr) *records_scanned += parsed.records;
    if (is_last) {
      state.last_segment_valid_bytes = parsed.valid_bytes;
      state.last_segment_file_bytes = data.size();
      state.drop_last_segment = !parsed.header_valid;
      state.tail_truncated = parsed.torn_tail;
    }
  }
  return state;
}

}  // namespace

Result<WalDirState> ScanWalDir(const std::string& dir) {
  return WalkWalDir(dir, nullptr, nullptr);
}

Result<WalReplayStats> ReplayWal(const std::string& dir, uint64_t after_seq,
                                 const WalReplayCallback& callback) {
  obs::TraceSpan span(Metrics().replay_seconds, "wal_replay");
  WalReplayStats stats;
  uint64_t first_seen = 0;
  const std::function<Status(const WalRecordView&)> deliver =
      [&](const WalRecordView& record) -> Status {
    if (first_seen == 0) first_seen = record.seq;
    if (record.seq <= after_seq) return Status::OK();
    ENSEMFDET_RETURN_NOT_OK(callback(record));
    ++stats.records_replayed;
    return Status::OK();
  };
  ENSEMFDET_ASSIGN_OR_RETURN(WalDirState state,
                             WalkWalDir(dir, &deliver,
                                        &stats.records_scanned));
  // Coverage: nothing between the checkpoint position and the first
  // surviving byte of log may be missing. An empty directory is a fresh
  // log (nothing was ever appended, nothing to cover).
  const uint64_t effective_first =
      first_seen != 0
          ? first_seen
          : (!state.segments.empty() ? state.segments.front().first_seq
                                     : after_seq + 1);
  if (effective_first > after_seq + 1) {
    return Corrupt(dir + " starts at seq " +
                   std::to_string(effective_first) +
                   " but replay must resume from seq " +
                   std::to_string(after_seq + 1) +
                   " — the log was truncated past the checkpoint");
  }
  stats.last_seq = state.next_seq > 0 ? state.next_seq - 1 : 0;
  if (state.segments.empty()) stats.last_seq = 0;
  stats.segments = state.segments.size();
  stats.tail_truncated = state.tail_truncated || state.drop_last_segment;
  if (stats.tail_truncated) Metrics().torn_tails_total->Increment();
  Metrics().records_replayed_total->Increment(
      static_cast<int64_t>(stats.records_replayed));
  return stats;
}

}  // namespace storage
}  // namespace ensemfdet
