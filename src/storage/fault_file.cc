#include "storage/fault_file.h"

#include <cstdio>
#include <cstring>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace ensemfdet {
namespace storage {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

#if defined(__unix__) || defined(__APPLE__)

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      const ssize_t written = ::write(fd_, p, n);
      if (written < 0) {
        if (errno == EINTR) continue;
        return Errno("write " + path_);
      }
      p += written;
      n -= static_cast<size_t>(written);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Errno("fsync " + path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Errno("close " + path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileOps : public FileOps {
 public:
  Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, bool truncate) override {
    const int flags =
        O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Errno("open " + path + " for writing");
    return {std::make_unique<PosixWritableFile>(fd, path)};
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Errno("rename " + from + " to " + to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return Errno("unlink " + path);
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Errno("truncate " + path);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return Errno("open directory " + dir + " for fsync");
    const int rc = ::fsync(fd);
    const int err = errno;
    ::close(fd);
    if (rc != 0) {
      errno = err;
      return Errno("fsync directory " + dir);
    }
    return Status::OK();
  }
};

#else  // non-POSIX fallback: stdio, fsync paths are no-ops.

class StdioWritableFile : public WritableFile {
 public:
  StdioWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}
  ~StdioWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(const void* data, size_t n) override {
    if (n > 0 && std::fwrite(data, 1, n, file_) != n) {
      return Status::IOError("write " + path_);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (std::fflush(file_) != 0) return Status::IOError("flush " + path_);
    return Status::OK();  // no portable fsync
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) return Status::IOError("close " + path_);
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class StdioFileOps : public FileOps {
 public:
  Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, bool truncate) override {
    std::FILE* file = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (file == nullptr) {
      return Status::IOError("cannot open " + path + " for writing");
    }
    return {std::make_unique<StdioWritableFile>(file, path)};
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError("rename " + from + " to " + to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      return Status::IOError("remove " + path);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    (void)path;
    (void)size;
    return Status::NotImplemented("truncate is unavailable on this host");
  }

  Status SyncDir(const std::string& dir) override {
    (void)dir;
    return Status::OK();
  }
};

#endif

FileOps*& CurrentOverride() {
  static FileOps* override_ops = nullptr;
  return override_ops;
}

}  // namespace

FileOps& FileOps::Real() {
#if defined(__unix__) || defined(__APPLE__)
  static PosixFileOps real;
#else
  static StdioFileOps real;
#endif
  return real;
}

FileOps& CurrentFileOps() {
  FileOps* override_ops = CurrentOverride();
  return override_ops != nullptr ? *override_ops : FileOps::Real();
}

ScopedFileOpsOverride::ScopedFileOpsOverride(FileOps* ops)
    : previous_(CurrentOverride()) {
  CurrentOverride() = ops;
}

ScopedFileOpsOverride::~ScopedFileOpsOverride() {
  CurrentOverride() = previous_;
}

// ---------------------------------------------------------------------------
// FaultInjectingFileOps
// ---------------------------------------------------------------------------

namespace {

Status CrashedStatus() {
  return Status::IOError("fault injection: simulated crash");
}

}  // namespace

/// Wraps a base WritableFile, routing op accounting (and the torn-write /
/// bit-rot mutations) through the owning FaultInjectingFileOps.
class FaultInjectingWritableFile : public WritableFile {
 public:
  FaultInjectingWritableFile(std::unique_ptr<WritableFile> base,
                             FaultInjectingFileOps* owner)
      : base_(std::move(base)), owner_(owner) {}

  Status Append(const void* data, size_t n) override {
    if (!owner_->BeginOp()) {
      // The crashing append may tear: the first short_write_bytes_ of the
      // payload reach the disk before the process "dies".
      const size_t torn =
          owner_->short_write_bytes_ > 0 && owner_->short_write_bytes_ < n
              ? owner_->short_write_bytes_
              : 0;
      if (torn > 0) {
        owner_->short_write_bytes_ = 0;
        (void)base_->Append(data, torn);
        (void)base_->Close();
      }
      return CrashedStatus();
    }
    if (owner_->flip_byte_index_ >= 0 && n > 0) {
      std::vector<char> rotted(static_cast<const char*>(data),
                               static_cast<const char*>(data) + n);
      rotted[static_cast<size_t>(owner_->flip_byte_index_) % n] ^= 1;
      return base_->Append(rotted.data(), n);
    }
    return base_->Append(data, n);
  }

  Status Sync() override {
    if (!owner_->BeginOp()) return CrashedStatus();
    ++owner_->sync_count_;
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectingFileOps* owner_;
};

FaultInjectingFileOps::FaultInjectingFileOps(FileOps* base) : base_(base) {}

bool FaultInjectingFileOps::BeginOp() {
  ++op_count_;
  if (crashed_) return false;
  if (fail_after_ >= 0 && op_count_ > fail_after_) {
    crashed_ = true;
    return false;
  }
  return true;
}

void FaultInjectingFileOps::FailAfter(int64_t ops) {
  fail_after_ = ops;
  crashed_ = false;
}

Result<std::unique_ptr<WritableFile>> FaultInjectingFileOps::OpenWritable(
    const std::string& path, bool truncate) {
  // Opening is not a counted op (it writes nothing except, for
  // truncate=true, the truncation — which a crashed process can no longer
  // reach, so a crashed ops refuses the open outright).
  if (crashed_) return CrashedStatus();
  ENSEMFDET_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                             base_->OpenWritable(path, truncate));
  return {std::make_unique<FaultInjectingWritableFile>(std::move(file),
                                                       this)};
}

Status FaultInjectingFileOps::Rename(const std::string& from,
                                     const std::string& to) {
  if (!BeginOp()) return CrashedStatus();
  ++rename_count_;
  return base_->Rename(from, to);
}

Status FaultInjectingFileOps::RemoveFile(const std::string& path) {
  if (!BeginOp()) return CrashedStatus();
  return base_->RemoveFile(path);
}

Status FaultInjectingFileOps::TruncateFile(const std::string& path,
                                           uint64_t size) {
  if (!BeginOp()) return CrashedStatus();
  return base_->TruncateFile(path, size);
}

Status FaultInjectingFileOps::SyncDir(const std::string& dir) {
  if (!BeginOp()) return CrashedStatus();
  ++dir_sync_count_;
  return base_->SyncDir(dir);
}

}  // namespace storage
}  // namespace ensemfdet
