// On-disk layout of the .efw write-ahead-log segments — the durability
// companion to the .efg snapshot container (storage/snapshot_format.h),
// sharing its conventions: little-endian packed structs, a versioned
// 64-byte header, an endianness tag, and the "corrupt input is a Status,
// never UB" reader contract.
//
// A WAL directory holds segments named
//
//     wal-<first_seq as 16 lowercase hex digits>.efw
//
// so a lexicographic directory listing IS the sequence order. Each
// segment is:
//
//   [WalSegmentHeader: 64 bytes]
//   [record, record, ...]        each starting at an 8-byte-aligned offset
//
// and each record is:
//
//   [WalRecordHeader: 32 bytes][payload: payload_length bytes][zero pad
//    up to the next 8-byte boundary]
//
// Integrity model:
//  * header_crc (masked CRC32C of the preceding header bytes) rejects a
//    torn or rotted header before any field is trusted;
//  * payload_crc (masked CRC32C of the payload) rejects torn/rotted
//    payloads;
//  * `seq` is a directory-global, strictly +1-increasing record number —
//    the replay cursor, the checkpoint linkage (kWalPosition), and the
//    duplicate/reorder detector in one;
//  * torn-tail rule: a record that fails validation at the tail of the
//    LAST segment is the write the crash interrupted — recovery truncates
//    it and continues; the same failure in any earlier position is
//    corruption of acked history and fails with IOError (DESIGN.md
//    §"Durable ingest").
#ifndef ENSEMFDET_STORAGE_WAL_FORMAT_H_
#define ENSEMFDET_STORAGE_WAL_FORMAT_H_

#include <cstdint>
#include <string>

#include "storage/snapshot_format.h"  // kEndianTag

namespace ensemfdet {
namespace storage {

/// "EFGWAL01" as a little-endian u64 (segment starts with these bytes).
inline constexpr uint64_t kWalMagic = 0x31304C4157474645ull;
inline constexpr uint32_t kWalSchemaVersion = 1;
/// Every record header starts at a multiple of this segment offset.
inline constexpr uint64_t kWalRecordAlignment = 8;
/// Hard upper bound on one record's payload. Far above any IngestBatch
/// the engine produces; its real job is to cap the `payload_length` a
/// reader will trust, so a crafted length near INT64_MAX can never drive
/// allocation or offset arithmetic into overflow.
inline constexpr uint64_t kWalMaxPayloadBytes = 1ull << 30;

struct WalSegmentHeader {
  uint64_t magic = kWalMagic;
  uint32_t endian_tag = kEndianTag;
  uint32_t schema_version = kWalSchemaVersion;
  /// Sequence number of the first record this segment holds (records are
  /// appended after the header in seq order). Must match the filename.
  uint64_t first_seq = 0;
  uint8_t reserved[36] = {};
  /// Masked CRC32C (common/crc32c.h) of the 60 bytes above.
  uint32_t header_crc = 0;
};
static_assert(sizeof(WalSegmentHeader) == 64,
              "segment header is exactly 64 bytes");

struct WalRecordHeader {
  /// Payload bytes following this header (before padding).
  uint32_t payload_length = 0;
  /// Masked CRC32C of the payload bytes.
  uint32_t payload_crc = 0;
  /// Directory-global record number; consecutive records differ by
  /// exactly +1 across segment boundaries.
  uint64_t seq = 0;
  /// Newest transaction timestamp in the record (diagnostic only;
  /// recovery keys on `seq`).
  int64_t timestamp = 0;
  uint32_t reserved = 0;
  /// Masked CRC32C of the 28 bytes above.
  uint32_t header_crc = 0;
};
static_assert(sizeof(WalRecordHeader) == 32,
              "record header is exactly 32 bytes");

/// "wal-<16 hex digits>.efw" for `first_seq`.
std::string WalSegmentFileName(uint64_t first_seq);

/// Parses `first_seq` back out of a segment file name (the name only, no
/// directory part); false when the name is not a WAL segment's.
bool ParseWalSegmentFileName(const std::string& name, uint64_t* first_seq);

}  // namespace storage
}  // namespace ensemfdet

#endif  // ENSEMFDET_STORAGE_WAL_FORMAT_H_
