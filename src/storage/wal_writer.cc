#include "storage/wal_writer.h"

#include <cstring>
#include <filesystem>
#include <vector>

#include "common/crc32c.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/wal_reader.h"

namespace ensemfdet {
namespace storage {

namespace {

struct WalWriterMetrics {
  obs::Counter* appends_total;
  obs::Counter* bytes_appended_total;
  obs::Counter* fsyncs_total;
  obs::Counter* segments_created_total;
  obs::Counter* segments_truncated_total;
  obs::Histogram* append_seconds;
};

WalWriterMetrics& Metrics() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static WalWriterMetrics m{
      reg.GetCounter("ensemfdet_wal_appends_total"),
      reg.GetCounter("ensemfdet_wal_bytes_appended_total"),
      reg.GetCounter("ensemfdet_wal_fsyncs_total"),
      reg.GetCounter("ensemfdet_wal_segments_created_total"),
      reg.GetCounter("ensemfdet_wal_segments_truncated_total"),
      reg.GetHistogram("ensemfdet_wal_append_seconds"),
  };
  return m;
}

uint64_t AlignUpRecord(uint64_t offset) {
  return (offset + kWalRecordAlignment - 1) & ~(kWalRecordAlignment - 1);
}

}  // namespace

const char* WalFsyncPolicyName(WalFsyncPolicy policy) {
  switch (policy) {
    case WalFsyncPolicy::kNone:
      return "none";
    case WalFsyncPolicy::kBatch:
      return "batch";
    case WalFsyncPolicy::kAlways:
      return "always";
  }
  return "unknown";
}

Result<WalFsyncPolicy> ParseWalFsyncPolicy(const std::string& name) {
  if (name == "none") return WalFsyncPolicy::kNone;
  if (name == "batch") return WalFsyncPolicy::kBatch;
  if (name == "always") return WalFsyncPolicy::kAlways;
  return Status::InvalidArgument("unknown fsync policy '" + name +
                                 "' (know: none, batch, always)");
}

WalWriter::WalWriter(std::string dir, WalWriterOptions options)
    : dir_(std::move(dir)), options_(options) {}

WalWriter::~WalWriter() {
  if (active_ != nullptr) (void)Close();
}

Result<WalWriter> WalWriter::Open(std::string dir, WalWriterOptions options) {
  if (options.group_commit_records < 1) {
    return Status::InvalidArgument("group_commit_records must be >= 1");
  }
  if (options.segment_bytes < sizeof(WalSegmentHeader)) {
    return Status::InvalidArgument("segment_bytes is below one header");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create WAL directory " + dir + ": " +
                           ec.message());
  }

  ENSEMFDET_ASSIGN_OR_RETURN(WalDirState state, ScanWalDir(dir));
  FileOps& ops = CurrentFileOps();
  WalWriter writer(std::move(dir), options);
  writer.next_seq_ = state.next_seq;
  for (const WalDirState::Segment& segment : state.segments) {
    writer.segments_.push_back({segment.path, segment.first_seq});
  }

  bool need_new_segment = writer.segments_.empty();
  if (state.drop_last_segment) {
    // The crash hit segment creation: the header never fully landed, so
    // the file holds nothing. Its filename still anchors the chain, and
    // CreateSegment below recreates it at the same first_seq.
    writer.recovered_torn_tail_ = true;
    ENSEMFDET_RETURN_NOT_OK(ops.RemoveFile(writer.segments_.back().path));
    ENSEMFDET_RETURN_NOT_OK(ops.SyncDir(writer.dir_));
    writer.segments_.pop_back();
    need_new_segment = true;
  } else if (!writer.segments_.empty()) {
    // Cut the torn tail (or stray bytes past the last full record) and
    // restore any alignment padding the crash clipped off the final
    // record (TruncateFile grows zero-filled): the next append must land
    // on an 8-byte frame boundary or the reader would misparse it as a
    // torn tail and drop an acked record.
    const uint64_t target =
        AlignUpRecord(state.last_segment_valid_bytes);
    writer.recovered_torn_tail_ = state.tail_truncated;
    if (target != state.last_segment_file_bytes) {
      ENSEMFDET_RETURN_NOT_OK(
          ops.TruncateFile(writer.segments_.back().path, target));
    }
    state.last_segment_valid_bytes = target;
  }

  if (need_new_segment) {
    ENSEMFDET_RETURN_NOT_OK(writer.CreateSegment(writer.next_seq_));
  } else {
    ENSEMFDET_ASSIGN_OR_RETURN(
        writer.active_,
        ops.OpenWritable(writer.segments_.back().path, /*truncate=*/false));
    writer.active_bytes_ = state.last_segment_valid_bytes;
  }
  return writer;
}

Status WalWriter::CreateSegment(uint64_t first_seq) {
  if (active_ != nullptr) {
    if (options_.fsync != WalFsyncPolicy::kNone && unsynced_records_ > 0) {
      ENSEMFDET_RETURN_NOT_OK(SyncActive());
    }
    ENSEMFDET_RETURN_NOT_OK(active_->Close());
    active_.reset();
  }
  FileOps& ops = CurrentFileOps();
  const std::string path = dir_ + "/" + WalSegmentFileName(first_seq);
  WalSegmentHeader header;
  header.first_seq = first_seq;
  header.header_crc =
      Crc32cMask(Crc32c(&header, sizeof(header) - sizeof(uint32_t)));
  ENSEMFDET_ASSIGN_OR_RETURN(active_,
                             ops.OpenWritable(path, /*truncate=*/true));
  ENSEMFDET_RETURN_NOT_OK(active_->Append(&header, sizeof(header)));
  if (options_.fsync != WalFsyncPolicy::kNone) {
    // The segment's directory entry must survive a power loss before any
    // record in it is acked.
    ENSEMFDET_RETURN_NOT_OK(active_->Sync());
    ENSEMFDET_RETURN_NOT_OK(ops.SyncDir(dir_));
  }
  segments_.push_back({path, first_seq});
  active_bytes_ = sizeof(header);
  unsynced_records_ = 0;
  Metrics().segments_created_total->Increment();
  return Status::OK();
}

Status WalWriter::SyncActive() {
  ENSEMFDET_RETURN_NOT_OK(active_->Sync());
  unsynced_records_ = 0;
  Metrics().fsyncs_total->Increment();
  return Status::OK();
}

Result<uint64_t> WalWriter::Append(const void* payload, size_t n,
                                   int64_t timestamp) {
  obs::TraceSpan span(Metrics().append_seconds, "wal_append");
  if (closed_ || active_ == nullptr) {
    return Status::FailedPrecondition("WAL writer is closed");
  }
  if (n > kWalMaxPayloadBytes) {
    return Status::InvalidArgument(
        "WAL payload of " + std::to_string(n) +
        " bytes exceeds the format cap");
  }
  if (active_bytes_ >= options_.segment_bytes) {
    ENSEMFDET_RETURN_NOT_OK(CreateSegment(next_seq_));
  }

  WalRecordHeader header;
  header.payload_length = static_cast<uint32_t>(n);
  header.payload_crc = Crc32cMask(Crc32c(payload, n));
  header.seq = next_seq_;
  header.timestamp = timestamp;
  header.header_crc =
      Crc32cMask(Crc32c(&header, sizeof(header) - sizeof(uint32_t)));

  // One contiguous frame per record (header + payload + alignment pad):
  // a single Append is a single crash point, so a torn record is always
  // a contiguous prefix — exactly what the reader's tail rule repairs.
  const uint64_t framed = AlignUpRecord(sizeof(header) + n);
  std::vector<char> frame(framed, 0);
  std::memcpy(frame.data(), &header, sizeof(header));
  if (n > 0) std::memcpy(frame.data() + sizeof(header), payload, n);
  ENSEMFDET_RETURN_NOT_OK(active_->Append(frame.data(), frame.size()));

  const uint64_t seq = next_seq_;
  ++next_seq_;
  active_bytes_ += framed;
  ++unsynced_records_;
  Metrics().appends_total->Increment();
  Metrics().bytes_appended_total->Increment(static_cast<int64_t>(framed));

  switch (options_.fsync) {
    case WalFsyncPolicy::kAlways:
      ENSEMFDET_RETURN_NOT_OK(SyncActive());
      break;
    case WalFsyncPolicy::kBatch:
      if (unsynced_records_ >= options_.group_commit_records) {
        ENSEMFDET_RETURN_NOT_OK(SyncActive());
      }
      break;
    case WalFsyncPolicy::kNone:
      break;
  }
  return seq;
}

Status WalWriter::Sync() {
  if (closed_ || active_ == nullptr) {
    return Status::FailedPrecondition("WAL writer is closed");
  }
  return SyncActive();
}

Status WalWriter::TruncateThrough(uint64_t through_seq) {
  if (closed_ || active_ == nullptr) {
    return Status::FailedPrecondition("WAL writer is closed");
  }
  FileOps& ops = CurrentFileOps();
  int64_t removed = 0;
  // Segment i's records span [first_seq_i, first_seq_{i+1}); it is fully
  // covered when the NEXT segment starts at or below through_seq + 1.
  // back() is the active segment and is never removed.
  while (segments_.size() > 1 &&
         segments_[1].first_seq <= through_seq + 1) {
    ENSEMFDET_RETURN_NOT_OK(ops.RemoveFile(segments_.front().path));
    segments_.erase(segments_.begin());
    ++removed;
  }
  if (removed > 0) {
    if (options_.fsync != WalFsyncPolicy::kNone) {
      ENSEMFDET_RETURN_NOT_OK(ops.SyncDir(dir_));
    }
    Metrics().segments_truncated_total->Increment(removed);
  }
  return Status::OK();
}

Status WalWriter::Close() {
  if (closed_ || active_ == nullptr) {
    closed_ = true;
    return Status::OK();
  }
  Status result = Status::OK();
  if (options_.fsync != WalFsyncPolicy::kNone && unsynced_records_ > 0) {
    result = SyncActive();
  }
  Status closed = active_->Close();
  if (result.ok()) result = closed;
  active_.reset();
  closed_ = true;
  return result;
}

}  // namespace storage
}  // namespace ensemfdet
