// Snapshot readers for the .efg container (storage/snapshot_format.h):
//
//   * ReadSnapshotInfo      — cheap header probe (kind, shape, fingerprint)
//   * LoadCsrGraphSnapshot  — streaming reader: one buffered read into
//                             owned arrays; validates structure AND
//                             re-verifies the content fingerprint.
//   * MappedCsrGraph        — zero-copy reader: mmaps the file and serves
//                             the CsrGraph accessor API directly off the
//                             mapping (validated structurally on Open;
//                             fingerprint verification is a separate —
//                             also O(|E|) — call so callers can time /
//                             skip it for trusted local snapshots).
//   * ReadGraphVersionSnapshot / ReadStoreCheckpoint — parts structs the
//     ingest layer reassembles into GraphVersion / DynamicGraphStore
//     (storage sits below ingest, so those types can't appear here).
//
// Corruption contract: every reader returns a Status for malformed input
// — wrong magic, foreign endianness, schema-version skew, truncation,
// out-of-bounds sections, broken CSR invariants, fingerprint mismatch —
// and never exhibits UB (pinned by tests/storage_test.cc; the ASan+UBSan
// CI job runs those tests on every push).
#ifndef ENSEMFDET_STORAGE_SNAPSHOT_READER_H_
#define ENSEMFDET_STORAGE_SNAPSHOT_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"
#include "graph/csr_graph.h"
#include "storage/mapped_file.h"
#include "storage/snapshot_format.h"

namespace ensemfdet {
namespace storage {

/// Header summary of a snapshot file (no payload is read or validated).
struct SnapshotInfo {
  PayloadKind kind = PayloadKind::kCsrGraph;
  uint32_t schema_version = 0;
  uint64_t content_fingerprint = 0;
  int64_t num_users = 0;
  int64_t num_merchants = 0;
  int64_t num_edges = 0;
  uint64_t file_size = 0;
};

/// Reads and sanity-checks the 64-byte header only.
Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path);

/// Streaming reader: loads a kCsrGraph snapshot into an owning CsrGraph
/// (one buffered read + per-array copies). Fully validates the CSR
/// structure and verifies the content fingerprint.
Result<CsrGraph> LoadCsrGraphSnapshot(const std::string& path);

/// Zero-copy reader: the returned object owns the file mapping, and
/// `graph()` is a CsrGraph *view* whose arrays live in the mapping.
/// Copies of the view (including `shared()`) keep the mapping alive, so
/// the MappedCsrGraph itself may be destroyed once a graph copy is taken.
///
/// Open() validates the header, section table, and every CSR structural
/// invariant (offsets monotone, rows strictly ascending and in range,
/// edge-id cross-references consistent, weights finite) so downstream
/// peeling can trust the view exactly like a FromBipartite-built graph.
///
/// @note Thread-safety: immutable after Open; share freely.
class MappedCsrGraph {
 public:
  static Result<MappedCsrGraph> Open(const std::string& path);

  const CsrGraph& graph() const { return graph_; }
  /// A shared handle to a view copy (keeps the mapping alive).
  std::shared_ptr<const CsrGraph> shared() const {
    return std::make_shared<const CsrGraph>(graph_);
  }
  /// The header's content fingerprint (the writer's claim).
  uint64_t fingerprint() const { return fingerprint_; }
  /// Recomputes FingerprintGraph over the mapped arrays and compares it
  /// to the header. IOError on mismatch. O(|E|).
  Status VerifyFingerprint() const;
  /// Total mapped bytes.
  size_t file_bytes() const { return file_bytes_; }

 private:
  MappedCsrGraph() = default;

  CsrGraph graph_;  // view; its backing handle holds the MappedFile
  uint64_t fingerprint_ = 0;
  size_t file_bytes_ = 0;
};

/// A deserialized kGraphVersion payload (owning copies; the ingest layer
/// reassembles a GraphVersion from these).
struct GraphVersionParts {
  uint64_t epoch = 0;
  bool compacted = false;
  int64_t num_users = 0;
  int64_t num_merchants = 0;
  /// The header's live-set fingerprint. Structural validation happens
  /// here; *fingerprint* verification needs the live-set merge and is
  /// done by the ingest reassembly (GraphVersion::ContentFingerprint).
  uint64_t content_fingerprint = 0;
  CsrGraph base;
  std::vector<Edge> adds;      ///< canonical order, disjoint from base
  std::vector<EdgeId> dead;    ///< ascending base EdgeIds
  std::vector<UserId> touched_users;
  std::vector<MerchantId> touched_merchants;
};

/// Loads a kGraphVersion snapshot (also accepts the version embedded in a
/// kStoreCheckpoint). Validates base structure and delta-log invariants
/// (adds sorted/deduped/disjoint-from-base/in-range, dead sorted/valid).
Result<GraphVersionParts> ReadGraphVersionSnapshot(const std::string& path);

/// A deserialized kStoreCheckpoint payload.
struct StoreCheckpointParts {
  GraphVersionParts version;  ///< base + delta + dirty frontier
  StoreStateRecord state;
  std::vector<SnapshotTransaction> window;  ///< non-decreasing timestamps
  /// WindowedDetector state; absent (has_clock == false) for checkpoints
  /// written directly off a DynamicGraphStore.
  bool has_clock = false;
  DetectorClockRecord clock;
  std::vector<ReorderEventRecord> reorder;
  /// Durable-ingest linkage; absent for checkpoints taken outside a
  /// WAL-backed session (see WalPositionRecord).
  bool has_wal_position = false;
  WalPositionRecord wal_position;
};

Result<StoreCheckpointParts> ReadStoreCheckpoint(const std::string& path);

}  // namespace storage
}  // namespace ensemfdet

#endif  // ENSEMFDET_STORAGE_SNAPSHOT_READER_H_
