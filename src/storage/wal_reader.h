// WAL replay: scans the .efw segments of a WAL directory in sequence
// order, validates every frame (storage/wal_format.h), and delivers the
// payloads of records with seq > after_seq to a callback — the recovery
// half of the durable-ingest layer (the write half is
// storage/wal_writer.h).
//
// Corruption contract, mirroring the snapshot readers: malformed input is
// always a Status, never UB. Two failure classes are distinguished:
//   * torn tail — the trailing record (or segment header) of the LAST
//     segment fails validation. That is what an interrupted append leaves
//     behind; replay stops cleanly before it, reports it in the stats,
//     and the writer physically truncates it on next Open.
//   * corrupt history — any validation failure before the tail: a bad
//     frame in a non-last segment, a CRC-valid record whose seq does not
//     chain (+1), a first_seq/filename mismatch, a CRC-valid length above
//     the format cap. Those bytes were acked and cannot be trusted or
//     skipped, so replay fails with IOError.
#ifndef ENSEMFDET_STORAGE_WAL_READER_H_
#define ENSEMFDET_STORAGE_WAL_READER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/wal_format.h"

namespace ensemfdet {
namespace storage {

/// One validated record, borrowed from the replay buffer (copy the
/// payload to keep it past the callback).
struct WalRecordView {
  uint64_t seq = 0;
  int64_t timestamp = 0;
  std::span<const std::byte> payload;
};

/// Returning a non-OK Status aborts the replay with that Status.
using WalReplayCallback = std::function<Status(const WalRecordView&)>;

struct WalReplayStats {
  uint64_t records_replayed = 0;  ///< delivered (seq > after_seq)
  uint64_t records_scanned = 0;   ///< valid records seen (skips included)
  uint64_t last_seq = 0;          ///< newest valid seq on disk (0 = none)
  uint64_t segments = 0;
  bool tail_truncated = false;    ///< a torn tail was detected and skipped
};

/// Replays every record with seq > after_seq, in seq order. An empty or
/// missing directory replays nothing (a fresh log). IOError when the log
/// cannot cover after_seq + 1 (truncated past the checkpoint — records
/// the caller has not applied are gone) or on corrupt history (above).
Result<WalReplayStats> ReplayWal(const std::string& dir, uint64_t after_seq,
                                 const WalReplayCallback& callback);

/// Shared directory scan (ReplayWal and WalWriter::Open): locates the
/// segments, validates every frame, and measures the valid prefix of the
/// last segment so the writer can truncate a torn tail before appending.
struct WalDirState {
  /// Segment paths in first_seq order (torn-header last segment included;
  /// see drop_last_segment).
  struct Segment {
    std::string path;
    uint64_t first_seq = 0;
  };
  std::vector<Segment> segments;
  /// Seq the next appended record must take (1 for an empty/missing dir).
  uint64_t next_seq = 1;
  /// Valid bytes of the last segment (header included); the file may be
  /// longer when a torn tail follows.
  uint64_t last_segment_valid_bytes = 0;
  uint64_t last_segment_file_bytes = 0;
  /// The last segment's own header failed validation (a crash during
  /// segment creation): the file holds no usable data and the writer
  /// removes it (its first_seq still advances next_seq via the chain).
  bool drop_last_segment = false;
  bool tail_truncated = false;
};

Result<WalDirState> ScanWalDir(const std::string& dir);

}  // namespace storage
}  // namespace ensemfdet

#endif  // ENSEMFDET_STORAGE_WAL_READER_H_
