#include "storage/snapshot_writer.h"

#include <filesystem>

#include "common/logging.h"
#include "graph/fingerprint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/fault_file.h"

namespace ensemfdet {
namespace storage {

namespace {

struct WriterMetrics {
  obs::Counter* writes_total;
  obs::Counter* bytes_written_total;
  obs::Histogram* write_seconds;
};

WriterMetrics& Metrics() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static WriterMetrics m{
      reg.GetCounter("ensemfdet_storage_writes_total"),
      reg.GetCounter("ensemfdet_storage_bytes_written_total"),
      reg.GetHistogram("ensemfdet_storage_write_seconds"),
  };
  return m;
}

uint64_t AlignUp(uint64_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

std::string ParentDir(const std::string& path) {
  const std::string parent =
      std::filesystem::path(path).parent_path().string();
  return parent.empty() ? std::string(".") : parent;
}

}  // namespace

SnapshotWriter::SnapshotWriter(PayloadKind kind, int64_t num_users,
                               int64_t num_merchants, int64_t num_edges,
                               uint64_t fingerprint) {
  header_.payload_kind = static_cast<uint32_t>(kind);
  header_.num_users = num_users;
  header_.num_merchants = num_merchants;
  header_.num_edges = num_edges;
  header_.content_fingerprint = fingerprint;
}

void SnapshotWriter::AddSection(SectionId id, const void* data,
                                uint64_t byte_size) {
  ENSEMFDET_DCHECK(byte_size == 0 || data != nullptr);
  sections_.push_back({id, data, byte_size});
}

Status SnapshotWriter::Write(const std::string& path) const {
  obs::TraceSpan span(Metrics().write_seconds, "snapshot_write");
  // Lay out the file: header, section table, then 64-byte-aligned
  // payloads in registration order.
  SnapshotHeader header = header_;
  header.section_count = static_cast<uint32_t>(sections_.size());
  std::vector<SectionEntry> table(sections_.size());
  uint64_t offset =
      sizeof(SnapshotHeader) + sizeof(SectionEntry) * sections_.size();
  for (size_t i = 0; i < sections_.size(); ++i) {
    offset = AlignUp(offset);
    table[i].id = static_cast<uint32_t>(sections_[i].id);
    table[i].offset = offset;
    table[i].byte_size = sections_[i].byte_size;
    offset += sections_[i].byte_size;
  }
  header.file_size = offset;

  // Crash-safe publication: write + fsync a temp file, rename over the
  // final name, then fsync the parent directory. All three syncs matter —
  // without the file fsync a power loss can leave zero-filled content
  // under the final name; without the directory fsync the rename itself
  // (the directory entry) can be lost, resurrecting the old file or
  // leaving none. Routed through CurrentFileOps() so the fault-injection
  // shim can crash the sequence at every step (tests/wal_test.cc).
  FileOps& ops = CurrentFileOps();
  const std::string tmp = path + ".tmp";
  Status written = [&]() -> Status {
    ENSEMFDET_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> out,
                               ops.OpenWritable(tmp, /*truncate=*/true));
    ENSEMFDET_RETURN_NOT_OK(out->Append(&header, sizeof(header)));
    ENSEMFDET_RETURN_NOT_OK(
        out->Append(table.data(), sizeof(SectionEntry) * table.size()));
    static const char kPad[kSectionAlignment] = {};
    uint64_t pos =
        sizeof(SnapshotHeader) + sizeof(SectionEntry) * table.size();
    for (size_t i = 0; i < sections_.size(); ++i) {
      const uint64_t aligned = AlignUp(pos);
      if (aligned > pos) {
        ENSEMFDET_RETURN_NOT_OK(out->Append(kPad, aligned - pos));
        pos = aligned;
      }
      if (sections_[i].byte_size > 0) {
        ENSEMFDET_RETURN_NOT_OK(
            out->Append(sections_[i].data, sections_[i].byte_size));
        pos += sections_[i].byte_size;
      }
    }
    ENSEMFDET_RETURN_NOT_OK(out->Sync());
    return out->Close();
  }();
  if (!written.ok()) {
    (void)ops.RemoveFile(tmp);
    return written;
  }
  Status renamed = ops.Rename(tmp, path);
  if (!renamed.ok()) {
    (void)ops.RemoveFile(tmp);
    return renamed;
  }
  ENSEMFDET_RETURN_NOT_OK(ops.SyncDir(ParentDir(path)));
  Metrics().writes_total->Increment();
  Metrics().bytes_written_total->Increment(
      static_cast<int64_t>(header.file_size));
  return Status::OK();
}

void AddCsrGraphSections(SnapshotWriter* writer, const CsrGraph& graph) {
  writer->AddSection(SectionId::kUserOffsets, graph.user_offsets().data(),
                     graph.user_offsets().size_bytes());
  writer->AddSection(SectionId::kUserNeighbors,
                     graph.user_neighbors_flat().data(),
                     graph.user_neighbors_flat().size_bytes());
  writer->AddSection(SectionId::kEdgeUsers, graph.edge_users_flat().data(),
                     graph.edge_users_flat().size_bytes());
  writer->AddSection(SectionId::kMerchantOffsets,
                     graph.merchant_offsets().data(),
                     graph.merchant_offsets().size_bytes());
  writer->AddSection(SectionId::kMerchantNeighbors,
                     graph.merchant_neighbors_flat().data(),
                     graph.merchant_neighbors_flat().size_bytes());
  writer->AddSection(SectionId::kMerchantEdgeIds,
                     graph.merchant_edge_ids_flat().data(),
                     graph.merchant_edge_ids_flat().size_bytes());
  if (graph.has_weights()) {
    writer->AddSection(SectionId::kWeights, graph.weights().data(),
                       graph.weights().size_bytes());
  }
}

Status WriteCsrGraphSnapshot(const CsrGraph& graph,
                             const std::string& path) {
  SnapshotWriter writer(PayloadKind::kCsrGraph, graph.num_users(),
                        graph.num_merchants(), graph.num_edges(),
                        FingerprintGraph(graph));
  AddCsrGraphSections(&writer, graph);
  return writer.Write(path);
}

}  // namespace storage
}  // namespace ensemfdet
