#include "storage/snapshot_writer.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/logging.h"
#include "graph/fingerprint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ensemfdet {
namespace storage {

namespace {

struct WriterMetrics {
  obs::Counter* writes_total;
  obs::Counter* bytes_written_total;
  obs::Histogram* write_seconds;
};

WriterMetrics& Metrics() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static WriterMetrics m{
      reg.GetCounter("ensemfdet_storage_writes_total"),
      reg.GetCounter("ensemfdet_storage_bytes_written_total"),
      reg.GetHistogram("ensemfdet_storage_write_seconds"),
  };
  return m;
}

uint64_t AlignUp(uint64_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

/// Forces the written bytes to stable storage before the rename commits
/// the name — otherwise a power loss can leave a zero-filled file at the
/// final path, destroying the checkpoint the rename was meant to
/// preserve. No-op where fsync is unavailable.
Status SyncFile(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot reopen " + path + " for fsync: " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync " + path + ": " + std::strerror(err));
  }
#else
  (void)path;
#endif
  return Status::OK();
}

}  // namespace

SnapshotWriter::SnapshotWriter(PayloadKind kind, int64_t num_users,
                               int64_t num_merchants, int64_t num_edges,
                               uint64_t fingerprint) {
  header_.payload_kind = static_cast<uint32_t>(kind);
  header_.num_users = num_users;
  header_.num_merchants = num_merchants;
  header_.num_edges = num_edges;
  header_.content_fingerprint = fingerprint;
}

void SnapshotWriter::AddSection(SectionId id, const void* data,
                                uint64_t byte_size) {
  ENSEMFDET_DCHECK(byte_size == 0 || data != nullptr);
  sections_.push_back({id, data, byte_size});
}

Status SnapshotWriter::Write(const std::string& path) const {
  obs::TraceSpan span(Metrics().write_seconds, "snapshot_write");
  // Lay out the file: header, section table, then 64-byte-aligned
  // payloads in registration order.
  SnapshotHeader header = header_;
  header.section_count = static_cast<uint32_t>(sections_.size());
  std::vector<SectionEntry> table(sections_.size());
  uint64_t offset =
      sizeof(SnapshotHeader) + sizeof(SectionEntry) * sections_.size();
  for (size_t i = 0; i < sections_.size(); ++i) {
    offset = AlignUp(offset);
    table[i].id = static_cast<uint32_t>(sections_[i].id);
    table[i].offset = offset;
    table[i].byte_size = sections_[i].byte_size;
    offset += sections_[i].byte_size;
  }
  header.file_size = offset;

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open " + tmp + " for writing");
    }
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(table.data()),
              static_cast<std::streamsize>(sizeof(SectionEntry) *
                                           table.size()));
    static const char kPad[kSectionAlignment] = {};
    uint64_t pos =
        sizeof(SnapshotHeader) + sizeof(SectionEntry) * table.size();
    for (size_t i = 0; i < sections_.size(); ++i) {
      const uint64_t aligned = AlignUp(pos);
      if (aligned > pos) {
        out.write(kPad, static_cast<std::streamsize>(aligned - pos));
        pos = aligned;
      }
      if (sections_[i].byte_size > 0) {
        out.write(static_cast<const char*>(sections_[i].data),
                  static_cast<std::streamsize>(sections_[i].byte_size));
        pos += sections_[i].byte_size;
      }
    }
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return Status::IOError("short write to " + tmp);
    }
  }
  Status synced = SyncFile(tmp);
  if (!synced.ok()) {
    std::remove(tmp.c_str());
    return synced;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path + ": " +
                           std::strerror(err));
  }
  Metrics().writes_total->Increment();
  Metrics().bytes_written_total->Increment(
      static_cast<int64_t>(header.file_size));
  return Status::OK();
}

void AddCsrGraphSections(SnapshotWriter* writer, const CsrGraph& graph) {
  writer->AddSection(SectionId::kUserOffsets, graph.user_offsets().data(),
                     graph.user_offsets().size_bytes());
  writer->AddSection(SectionId::kUserNeighbors,
                     graph.user_neighbors_flat().data(),
                     graph.user_neighbors_flat().size_bytes());
  writer->AddSection(SectionId::kEdgeUsers, graph.edge_users_flat().data(),
                     graph.edge_users_flat().size_bytes());
  writer->AddSection(SectionId::kMerchantOffsets,
                     graph.merchant_offsets().data(),
                     graph.merchant_offsets().size_bytes());
  writer->AddSection(SectionId::kMerchantNeighbors,
                     graph.merchant_neighbors_flat().data(),
                     graph.merchant_neighbors_flat().size_bytes());
  writer->AddSection(SectionId::kMerchantEdgeIds,
                     graph.merchant_edge_ids_flat().data(),
                     graph.merchant_edge_ids_flat().size_bytes());
  if (graph.has_weights()) {
    writer->AddSection(SectionId::kWeights, graph.weights().data(),
                       graph.weights().size_bytes());
  }
}

Status WriteCsrGraphSnapshot(const CsrGraph& graph,
                             const std::string& path) {
  SnapshotWriter writer(PayloadKind::kCsrGraph, graph.num_users(),
                        graph.num_merchants(), graph.num_edges(),
                        FingerprintGraph(graph));
  AddCsrGraphSections(&writer, graph);
  return writer.Write(path);
}

}  // namespace storage
}  // namespace ensemfdet
