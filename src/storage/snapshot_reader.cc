#include "storage/snapshot_reader.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>

#include "graph/fingerprint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ensemfdet {
namespace storage {

namespace {

struct ReaderMetrics {
  obs::Counter* loads_total;
  obs::Counter* bytes_read_total;
  obs::Counter* verifies_total;
  obs::Histogram* load_seconds;
  obs::Histogram* verify_seconds;
};

ReaderMetrics& Metrics() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static ReaderMetrics m{
      reg.GetCounter("ensemfdet_storage_loads_total"),
      reg.GetCounter("ensemfdet_storage_bytes_read_total"),
      reg.GetCounter("ensemfdet_storage_verifies_total"),
      reg.GetHistogram("ensemfdet_storage_load_seconds"),
      reg.GetHistogram("ensemfdet_storage_verify_seconds"),
  };
  return m;
}

// The delta-adds section is the Edge array verbatim; pin its layout.
static_assert(sizeof(Edge) == 2 * sizeof(uint32_t),
              "Edge must be two packed uint32s for snapshot I/O");

/// A validated-at-the-container-level snapshot: mapping + header + table.
/// Section *payloads* are validated by the per-payload parsers below.
struct Raw {
  std::shared_ptr<const MappedFile> file;
  SnapshotHeader header;
  std::vector<SectionEntry> table;

  const SectionEntry* Find(SectionId id) const {
    for (const SectionEntry& entry : table) {
      if (entry.id == static_cast<uint32_t>(id)) return &entry;
    }
    return nullptr;
  }
};

Status Corrupt(const std::string& what) {
  return Status::IOError("corrupt snapshot: " + what);
}

Result<Raw> OpenRaw(const std::string& path) {
  Raw raw;
  ENSEMFDET_ASSIGN_OR_RETURN(raw.file, MappedFile::Open(path));
  const size_t size = raw.file->size();
  if (size < sizeof(SnapshotHeader)) {
    return Corrupt(path + " is " + std::to_string(size) +
                   " bytes, smaller than the header");
  }
  std::memcpy(&raw.header, raw.file->data(), sizeof(SnapshotHeader));
  const SnapshotHeader& h = raw.header;
  if (h.magic != kSnapshotMagic) {
    return Corrupt(path + " has wrong magic (not an .efg snapshot)");
  }
  if (h.endian_tag != kEndianTag) {
    return Corrupt(path + " was written with a different byte order");
  }
  if (h.schema_version != kSchemaVersion) {
    return Status::FailedPrecondition(
        "snapshot schema version skew: " + path + " is v" +
        std::to_string(h.schema_version) + ", this reader speaks v" +
        std::to_string(kSchemaVersion));
  }
  if (h.payload_kind < 1 || h.payload_kind > 3) {
    return Corrupt("unknown payload kind " +
                   std::to_string(h.payload_kind));
  }
  if (h.num_users < 0 || h.num_merchants < 0 || h.num_edges < 0) {
    return Corrupt("negative node/edge counts");
  }
  // Bound the counts by what the file could possibly hold (offsets cost 8
  // bytes per node, edge arrays 4 per edge) so later `count + 1` /
  // indexing arithmetic can never overflow or run past a section.
  if (h.num_users > static_cast<int64_t>(size / 8) ||
      h.num_merchants > static_cast<int64_t>(size / 8) ||
      h.num_edges > static_cast<int64_t>(size / 4)) {
    return Corrupt("node/edge counts exceed what the file can hold");
  }
  if (h.file_size != size) {
    return Corrupt(path + " is truncated: header declares " +
                   std::to_string(h.file_size) + " bytes, file has " +
                   std::to_string(size));
  }
  if (h.section_count > 1024) {
    return Corrupt("implausible section count " +
                   std::to_string(h.section_count));
  }
  const uint64_t table_end = sizeof(SnapshotHeader) +
                             sizeof(SectionEntry) *
                                 static_cast<uint64_t>(h.section_count);
  if (table_end > size) {
    return Corrupt("section table extends past end of file");
  }
  raw.table.resize(h.section_count);
  if (h.section_count > 0) {
    std::memcpy(raw.table.data(), raw.file->data() + sizeof(SnapshotHeader),
                sizeof(SectionEntry) * h.section_count);
  }
  for (const SectionEntry& entry : raw.table) {
    if (entry.offset % kSectionAlignment != 0) {
      return Corrupt("section " + std::to_string(entry.id) +
                     " is misaligned");
    }
    if (entry.offset > size || entry.byte_size > size - entry.offset) {
      return Corrupt("section " + std::to_string(entry.id) +
                     " extends past end of file");
    }
  }
  for (size_t i = 0; i < raw.table.size(); ++i) {
    for (size_t j = i + 1; j < raw.table.size(); ++j) {
      if (raw.table[i].id == raw.table[j].id) {
        return Corrupt("duplicate section id " +
                       std::to_string(raw.table[i].id));
      }
    }
  }
  return raw;
}

/// Typed view of a section payload. `expected_count` < 0 means any
/// element count; a missing section is an error unless `required` is
/// false (then an empty span is returned).
template <typename T>
Result<std::span<const T>> TypedSection(const Raw& raw, SectionId id,
                                        bool required,
                                        int64_t expected_count = -1) {
  const SectionEntry* entry = raw.Find(id);
  if (entry == nullptr) {
    if (required) {
      return Corrupt("missing section " +
                     std::to_string(static_cast<uint32_t>(id)));
    }
    return std::span<const T>{};
  }
  if (entry->byte_size % sizeof(T) != 0) {
    return Corrupt("section " + std::to_string(entry->id) + " size " +
                   std::to_string(entry->byte_size) +
                   " is not a multiple of the element size");
  }
  const size_t count = entry->byte_size / sizeof(T);
  if (expected_count >= 0 && count != static_cast<size_t>(expected_count)) {
    return Corrupt("section " + std::to_string(entry->id) + " holds " +
                   std::to_string(count) + " elements, expected " +
                   std::to_string(expected_count));
  }
  if (count == 0) return std::span<const T>{};
  // 64-byte-aligned offset off a page-aligned (or max_align_t-aligned
  // fallback) base satisfies every element type's alignment.
  return std::span<const T>(
      reinterpret_cast<const T*>(raw.file->data() + entry->offset), count);
}

/// Fixed-size record section, copied out by value.
template <typename T>
Result<T> RecordSection(const Raw& raw, SectionId id) {
  ENSEMFDET_ASSIGN_OR_RETURN(
      std::span<const std::byte> bytes,
      TypedSection<std::byte>(raw, id, /*required=*/true,
                              static_cast<int64_t>(sizeof(T))));
  T record;
  std::memcpy(&record, bytes.data(), sizeof(T));
  return record;
}

struct CsrSpans {
  std::span<const int64_t> user_offsets;
  std::span<const MerchantId> user_neighbors;
  std::span<const UserId> edge_users;
  std::span<const int64_t> merchant_offsets;
  std::span<const UserId> merchant_neighbors;
  std::span<const EdgeId> merchant_edge_ids;
  std::span<const double> weights;
  int64_t num_edges = 0;  ///< derived from the array sections
};

/// Locates the CSR sections and checks their sizes are mutually
/// consistent; `ValidateCsrStructure` then proves the invariants.
Result<CsrSpans> ParseCsrSections(const Raw& raw, int64_t num_users,
                                  int64_t num_merchants) {
  CsrSpans s;
  ENSEMFDET_ASSIGN_OR_RETURN(
      s.user_offsets, TypedSection<int64_t>(raw, SectionId::kUserOffsets,
                                            true, num_users + 1));
  ENSEMFDET_ASSIGN_OR_RETURN(
      s.user_neighbors,
      TypedSection<MerchantId>(raw, SectionId::kUserNeighbors, true));
  s.num_edges = static_cast<int64_t>(s.user_neighbors.size());
  ENSEMFDET_ASSIGN_OR_RETURN(
      s.edge_users,
      TypedSection<UserId>(raw, SectionId::kEdgeUsers, true, s.num_edges));
  ENSEMFDET_ASSIGN_OR_RETURN(
      s.merchant_offsets,
      TypedSection<int64_t>(raw, SectionId::kMerchantOffsets, true,
                            num_merchants + 1));
  ENSEMFDET_ASSIGN_OR_RETURN(
      s.merchant_neighbors,
      TypedSection<UserId>(raw, SectionId::kMerchantNeighbors, true,
                           s.num_edges));
  ENSEMFDET_ASSIGN_OR_RETURN(
      s.merchant_edge_ids,
      TypedSection<EdgeId>(raw, SectionId::kMerchantEdgeIds, true,
                           s.num_edges));
  if (raw.Find(SectionId::kWeights) != nullptr) {
    ENSEMFDET_ASSIGN_OR_RETURN(
        s.weights,
        TypedSection<double>(raw, SectionId::kWeights, true, s.num_edges));
  }
  return s;
}

/// Proves every CsrGraph layout invariant over untrusted arrays, O(|E|):
/// monotone offsets covering exactly num_edges, strictly ascending
/// in-range rows on both sides, edge_users consistent with the user rows,
/// merchant edge-id cross-references consistent with the user side, and
/// finite weights. A graph that passes is indistinguishable (to every
/// consumer) from one FromBipartite built.
Status ValidateCsrStructure(const CsrSpans& s, int64_t num_users,
                            int64_t num_merchants) {
  if (s.user_offsets[0] != 0 ||
      s.user_offsets[static_cast<size_t>(num_users)] != s.num_edges) {
    return Corrupt("user offsets do not cover the edge array");
  }
  for (int64_t u = 0; u < num_users; ++u) {
    const int64_t begin = s.user_offsets[static_cast<size_t>(u)];
    const int64_t end = s.user_offsets[static_cast<size_t>(u) + 1];
    if (begin > end || end > s.num_edges) {
      return Corrupt("user offsets are not monotone");
    }
    for (int64_t k = begin; k < end; ++k) {
      const MerchantId v = s.user_neighbors[static_cast<size_t>(k)];
      if (v >= num_merchants) {
        return Corrupt("merchant id out of range in a user row");
      }
      if (k > begin &&
          s.user_neighbors[static_cast<size_t>(k) - 1] >= v) {
        return Corrupt("user row is not strictly ascending");
      }
      if (s.edge_users[static_cast<size_t>(k)] !=
          static_cast<UserId>(u)) {
        return Corrupt("edge_users disagrees with the user rows");
      }
    }
  }
  if (s.merchant_offsets[0] != 0 ||
      s.merchant_offsets[static_cast<size_t>(num_merchants)] !=
          s.num_edges) {
    return Corrupt("merchant offsets do not cover the edge array");
  }
  for (int64_t v = 0; v < num_merchants; ++v) {
    const int64_t begin = s.merchant_offsets[static_cast<size_t>(v)];
    const int64_t end = s.merchant_offsets[static_cast<size_t>(v) + 1];
    if (begin > end || end > s.num_edges) {
      return Corrupt("merchant offsets are not monotone");
    }
    for (int64_t k = begin; k < end; ++k) {
      const UserId u = s.merchant_neighbors[static_cast<size_t>(k)];
      if (u >= num_users) {
        return Corrupt("user id out of range in a merchant row");
      }
      if (k > begin &&
          s.merchant_neighbors[static_cast<size_t>(k) - 1] >= u) {
        return Corrupt("merchant row is not strictly ascending");
      }
      const EdgeId e = s.merchant_edge_ids[static_cast<size_t>(k)];
      if (e < 0 || e >= s.num_edges) {
        return Corrupt("merchant edge id out of range");
      }
      if (s.user_neighbors[static_cast<size_t>(e)] !=
              static_cast<MerchantId>(v) ||
          s.edge_users[static_cast<size_t>(e)] != u) {
        return Corrupt("merchant edge ids disagree with the user side");
      }
    }
  }
  for (double w : s.weights) {
    if (!std::isfinite(w)) return Corrupt("non-finite edge weight");
  }
  return Status::OK();
}

CsrGraph ViewFromSpans(const CsrSpans& s, int64_t num_users,
                       int64_t num_merchants,
                       std::shared_ptr<const void> backing) {
  return CsrGraph::WrapExternal(
      num_users, num_merchants, s.user_offsets, s.user_neighbors,
      s.edge_users, s.merchant_offsets, s.merchant_neighbors,
      s.merchant_edge_ids, s.weights, std::move(backing));
}

CsrGraph CopyFromSpans(const CsrSpans& s, int64_t num_users,
                       int64_t num_merchants) {
  return CsrGraph::FromRawArrays(
      num_users, num_merchants,
      {s.user_offsets.begin(), s.user_offsets.end()},
      {s.user_neighbors.begin(), s.user_neighbors.end()},
      {s.edge_users.begin(), s.edge_users.end()},
      {s.merchant_offsets.begin(), s.merchant_offsets.end()},
      {s.merchant_neighbors.begin(), s.merchant_neighbors.end()},
      {s.merchant_edge_ids.begin(), s.merchant_edge_ids.end()},
      {s.weights.begin(), s.weights.end()});
}

/// Shared prologue of both kCsrGraph readers: open, check the payload
/// kind, parse + cross-check + structurally validate the CSR sections.
/// Keeping it in one place keeps the two readers' corruption contracts
/// from diverging.
struct ValidatedCsr {
  Raw raw;
  CsrSpans spans;
};

Result<ValidatedCsr> OpenValidatedCsr(const std::string& path) {
  ValidatedCsr v;
  ENSEMFDET_ASSIGN_OR_RETURN(v.raw, OpenRaw(path));
  if (v.raw.header.payload_kind !=
      static_cast<uint32_t>(PayloadKind::kCsrGraph)) {
    return Status::InvalidArgument(
        path + " is not a CsrGraph snapshot (payload kind " +
        std::to_string(v.raw.header.payload_kind) + ")");
  }
  ENSEMFDET_ASSIGN_OR_RETURN(
      v.spans, ParseCsrSections(v.raw, v.raw.header.num_users,
                                v.raw.header.num_merchants));
  if (v.spans.num_edges != v.raw.header.num_edges) {
    return Corrupt("edge sections disagree with the header edge count");
  }
  ENSEMFDET_RETURN_NOT_OK(ValidateCsrStructure(
      v.spans, v.raw.header.num_users, v.raw.header.num_merchants));
  return v;
}

}  // namespace

Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path) {
  ENSEMFDET_ASSIGN_OR_RETURN(Raw raw, OpenRaw(path));
  SnapshotInfo info;
  info.kind = static_cast<PayloadKind>(raw.header.payload_kind);
  info.schema_version = raw.header.schema_version;
  info.content_fingerprint = raw.header.content_fingerprint;
  info.num_users = raw.header.num_users;
  info.num_merchants = raw.header.num_merchants;
  info.num_edges = raw.header.num_edges;
  info.file_size = raw.header.file_size;
  return info;
}

Result<CsrGraph> LoadCsrGraphSnapshot(const std::string& path) {
  obs::TraceSpan span(Metrics().load_seconds, "snapshot_load");
  ENSEMFDET_ASSIGN_OR_RETURN(ValidatedCsr v, OpenValidatedCsr(path));
  Metrics().loads_total->Increment();
  Metrics().bytes_read_total->Increment(
      static_cast<int64_t>(v.raw.file->size()));
  CsrGraph graph = CopyFromSpans(v.spans, v.raw.header.num_users,
                                 v.raw.header.num_merchants);
  const uint64_t fingerprint = FingerprintGraph(graph);
  if (fingerprint != v.raw.header.content_fingerprint) {
    return Corrupt("content fingerprint mismatch (file claims " +
                   std::to_string(v.raw.header.content_fingerprint) +
                   ", payload hashes to " + std::to_string(fingerprint) +
                   ")");
  }
  return graph;
}

Result<MappedCsrGraph> MappedCsrGraph::Open(const std::string& path) {
  obs::TraceSpan span(Metrics().load_seconds, "snapshot_mmap_open");
  ENSEMFDET_ASSIGN_OR_RETURN(ValidatedCsr v, OpenValidatedCsr(path));
  Metrics().loads_total->Increment();
  Metrics().bytes_read_total->Increment(
      static_cast<int64_t>(v.raw.file->size()));
  MappedCsrGraph mapped;
  mapped.fingerprint_ = v.raw.header.content_fingerprint;
  mapped.file_bytes_ = v.raw.file->size();
  mapped.graph_ = ViewFromSpans(v.spans, v.raw.header.num_users,
                                v.raw.header.num_merchants, v.raw.file);
  return mapped;
}

Status MappedCsrGraph::VerifyFingerprint() const {
  obs::TraceSpan span(Metrics().verify_seconds, "snapshot_verify");
  Metrics().verifies_total->Increment();
  const uint64_t actual = FingerprintGraph(graph_);
  if (actual != fingerprint_) {
    return Corrupt("content fingerprint mismatch (file claims " +
                   std::to_string(fingerprint_) + ", payload hashes to " +
                   std::to_string(actual) + ")");
  }
  return Status::OK();
}

namespace {

Result<GraphVersionParts> ParseVersionParts(const Raw& raw) {
  GraphVersionParts parts;
  parts.num_users = raw.header.num_users;
  parts.num_merchants = raw.header.num_merchants;
  parts.content_fingerprint = raw.header.content_fingerprint;

  ENSEMFDET_ASSIGN_OR_RETURN(
      CsrSpans spans,
      ParseCsrSections(raw, parts.num_users, parts.num_merchants));
  ENSEMFDET_RETURN_NOT_OK(
      ValidateCsrStructure(spans, parts.num_users, parts.num_merchants));
  parts.base = CopyFromSpans(spans, parts.num_users, parts.num_merchants);

  ENSEMFDET_ASSIGN_OR_RETURN(
      VersionScalarsRecord scalars,
      RecordSection<VersionScalarsRecord>(raw, SectionId::kVersionScalars));
  parts.epoch = scalars.epoch;
  parts.compacted = (scalars.flags & kVersionFlagCompacted) != 0;

  ENSEMFDET_ASSIGN_OR_RETURN(
      std::span<const Edge> adds,
      TypedSection<Edge>(raw, SectionId::kDeltaAdds, true));
  parts.adds.assign(adds.begin(), adds.end());
  for (size_t i = 0; i < parts.adds.size(); ++i) {
    const Edge& e = parts.adds[i];
    if (e.user >= parts.num_users || e.merchant >= parts.num_merchants) {
      return Corrupt("delta add endpoint out of range");
    }
    if (i > 0) {
      const Edge& prev = parts.adds[i - 1];
      if (prev.user > e.user ||
          (prev.user == e.user && prev.merchant >= e.merchant)) {
        return Corrupt("delta adds are not in canonical order");
      }
    }
    // Disjointness from base: the add must not be a live base edge.
    std::span<const MerchantId> row = parts.base.user_neighbors(e.user);
    if (std::binary_search(row.begin(), row.end(), e.merchant)) {
      return Corrupt("delta add duplicates a base edge");
    }
  }

  ENSEMFDET_ASSIGN_OR_RETURN(
      std::span<const EdgeId> dead,
      TypedSection<EdgeId>(raw, SectionId::kDeltaDead, true));
  parts.dead.assign(dead.begin(), dead.end());
  for (size_t i = 0; i < parts.dead.size(); ++i) {
    if (parts.dead[i] < 0 || parts.dead[i] >= parts.base.num_edges()) {
      return Corrupt("dead edge id out of base range");
    }
    if (i > 0 && parts.dead[i - 1] >= parts.dead[i]) {
      return Corrupt("dead edge ids are not strictly ascending");
    }
  }

  const int64_t live = parts.base.num_edges() -
                       static_cast<int64_t>(parts.dead.size()) +
                       static_cast<int64_t>(parts.adds.size());
  if (live != raw.header.num_edges) {
    return Corrupt("base/delta live-edge count disagrees with the header");
  }

  ENSEMFDET_ASSIGN_OR_RETURN(
      std::span<const UserId> touched_users,
      TypedSection<UserId>(raw, SectionId::kTouchedUsers, false));
  parts.touched_users.assign(touched_users.begin(), touched_users.end());
  ENSEMFDET_ASSIGN_OR_RETURN(
      std::span<const MerchantId> touched_merchants,
      TypedSection<MerchantId>(raw, SectionId::kTouchedMerchants, false));
  parts.touched_merchants.assign(touched_merchants.begin(),
                                 touched_merchants.end());
  for (size_t i = 0; i < parts.touched_users.size(); ++i) {
    if (parts.touched_users[i] >= parts.num_users ||
        (i > 0 && parts.touched_users[i - 1] >= parts.touched_users[i])) {
      return Corrupt("touched users are out of range or unsorted");
    }
  }
  for (size_t i = 0; i < parts.touched_merchants.size(); ++i) {
    if (parts.touched_merchants[i] >= parts.num_merchants ||
        (i > 0 &&
         parts.touched_merchants[i - 1] >= parts.touched_merchants[i])) {
      return Corrupt("touched merchants are out of range or unsorted");
    }
  }
  return parts;
}

}  // namespace

Result<GraphVersionParts> ReadGraphVersionSnapshot(
    const std::string& path) {
  ENSEMFDET_ASSIGN_OR_RETURN(Raw raw, OpenRaw(path));
  if (raw.header.payload_kind !=
          static_cast<uint32_t>(PayloadKind::kGraphVersion) &&
      raw.header.payload_kind !=
          static_cast<uint32_t>(PayloadKind::kStoreCheckpoint)) {
    return Status::InvalidArgument(
        path + " does not hold a GraphVersion (payload kind " +
        std::to_string(raw.header.payload_kind) + ")");
  }
  return ParseVersionParts(raw);
}

Result<StoreCheckpointParts> ReadStoreCheckpoint(const std::string& path) {
  ENSEMFDET_ASSIGN_OR_RETURN(Raw raw, OpenRaw(path));
  if (raw.header.payload_kind !=
      static_cast<uint32_t>(PayloadKind::kStoreCheckpoint)) {
    return Status::InvalidArgument(
        path + " is not a store checkpoint (payload kind " +
        std::to_string(raw.header.payload_kind) + ")");
  }
  StoreCheckpointParts parts;
  ENSEMFDET_ASSIGN_OR_RETURN(parts.version, ParseVersionParts(raw));
  ENSEMFDET_ASSIGN_OR_RETURN(
      parts.state, RecordSection<StoreStateRecord>(raw,
                                                   SectionId::kStoreState));
  if (parts.state.cfg_num_users != raw.header.num_users ||
      parts.state.cfg_num_merchants != raw.header.num_merchants) {
    return Corrupt("store config universes disagree with the header");
  }
  if (parts.state.cfg_num_users < 1 || parts.state.cfg_num_merchants < 1 ||
      !(parts.state.cfg_compaction_factor > 0.0) ||
      parts.state.cfg_min_compaction_delta < 1) {
    return Corrupt("store config is invalid");
  }

  ENSEMFDET_ASSIGN_OR_RETURN(
      std::span<const SnapshotTransaction> window,
      TypedSection<SnapshotTransaction>(raw, SectionId::kWindowEvents,
                                        true));
  parts.window.assign(window.begin(), window.end());
  for (size_t i = 0; i < parts.window.size(); ++i) {
    const SnapshotTransaction& tx = parts.window[i];
    if (tx.user >= static_cast<uint64_t>(raw.header.num_users) ||
        tx.merchant >= static_cast<uint64_t>(raw.header.num_merchants)) {
      return Corrupt("window event endpoint out of range");
    }
    if (i > 0 && parts.window[i - 1].timestamp > tx.timestamp) {
      return Corrupt("window events are not in timestamp order");
    }
  }
  if (!parts.window.empty() &&
      parts.window.back().timestamp > parts.state.newest_timestamp) {
    return Corrupt("newest timestamp is older than the window");
  }

  if (raw.Find(SectionId::kDetectorClock) != nullptr) {
    ENSEMFDET_ASSIGN_OR_RETURN(
        parts.clock,
        RecordSection<DetectorClockRecord>(raw, SectionId::kDetectorClock));
    parts.has_clock = true;
    ENSEMFDET_ASSIGN_OR_RETURN(
        std::span<const ReorderEventRecord> reorder,
        TypedSection<ReorderEventRecord>(raw, SectionId::kReorderEvents,
                                         false));
    parts.reorder.assign(reorder.begin(), reorder.end());
    for (const ReorderEventRecord& event : parts.reorder) {
      if (event.user >= static_cast<uint64_t>(raw.header.num_users) ||
          event.merchant >=
              static_cast<uint64_t>(raw.header.num_merchants)) {
        return Corrupt("reorder event endpoint out of range");
      }
      if (event.seq >= parts.clock.next_seq) {
        return Corrupt("reorder event sequence exceeds the clock");
      }
    }
  }

  if (raw.Find(SectionId::kWalPosition) != nullptr) {
    ENSEMFDET_ASSIGN_OR_RETURN(
        parts.wal_position,
        RecordSection<WalPositionRecord>(raw, SectionId::kWalPosition));
    parts.has_wal_position = true;
  }
  return parts;
}

}  // namespace storage
}  // namespace ensemfdet
