// On-disk layout of the .efg binary snapshot format — the versioned,
// little-endian container every snapshot writer/reader in the repo speaks
// (see DESIGN.md §"Snapshot format" for the layout diagram and contracts).
//
// A file is:
//
//   [SnapshotHeader: 64 bytes]
//   [SectionEntry × section_count]
//   [section payloads, each starting at a 64-byte-aligned file offset,
//    zero-padded up to the next section]
//
// Section payloads are raw little-endian arrays in exactly the in-memory
// layout CsrGraph uses (int64/uint32/double), which is what makes the
// mmap reader zero-copy: a validated section pointer IS the array. The
// 64-byte alignment guarantees every element type's natural alignment off
// a page-aligned mapping (and keeps arrays cache-line aligned).
//
// Integrity model:
//  * `endian_tag` + `magic` reject foreign/byte-swapped files up front.
//  * `schema_version` gates incompatible layout changes (readers reject
//    unknown versions with FailedPrecondition, never guess).
//  * `content_fingerprint` is graph/fingerprint.h's hash of the payload's
//    live edge set; readers re-verify it so a bit-rotted file can never
//    impersonate its source graph.
//  * `file_size` detects truncation before any section is touched.
//
// Corrupt input is an *error*, never UB: every reader validates bounds,
// alignment, and the full CSR structural invariants before handing out a
// graph (pinned by tests/storage_test.cc under ASan/UBSan in CI).
#ifndef ENSEMFDET_STORAGE_SNAPSHOT_FORMAT_H_
#define ENSEMFDET_STORAGE_SNAPSHOT_FORMAT_H_

#include <cstdint>

namespace ensemfdet {
namespace storage {

/// "EFGSNAP1" as a little-endian u64 (file starts with these 8 bytes).
inline constexpr uint64_t kSnapshotMagic = 0x3150414E53474645ull;
/// Written as 0x0A0B0C0D; reads back differently on a byte-swapped host.
inline constexpr uint32_t kEndianTag = 0x0A0B0C0Du;
inline constexpr uint32_t kSchemaVersion = 1;
/// Every section payload starts at a multiple of this file offset.
inline constexpr uint64_t kSectionAlignment = 64;

/// What the file contains (header.payload_kind).
enum class PayloadKind : uint32_t {
  /// A plain CsrGraph: sections 1..7.
  kCsrGraph = 1,
  /// An ingest GraphVersion: base CSR (1..7) + delta sections (16..20).
  kGraphVersion = 2,
  /// A DynamicGraphStore checkpoint: GraphVersion sections + store state,
  /// window events, and (optionally) WindowedDetector clock/reorder state.
  kStoreCheckpoint = 3,
};

enum class SectionId : uint32_t {
  // CsrGraph arrays (element types as in graph/csr_graph.h).
  kUserOffsets = 1,        ///< int64[num_users + 1]
  kUserNeighbors = 2,      ///< uint32[num_edges] (slot == EdgeId)
  kEdgeUsers = 3,          ///< uint32[num_edges]
  kMerchantOffsets = 4,    ///< int64[num_merchants + 1]
  kMerchantNeighbors = 5,  ///< uint32[num_edges]
  kMerchantEdgeIds = 6,    ///< int64[num_edges]
  kWeights = 7,            ///< double[num_edges]; absent == unweighted

  // GraphVersion delta-log (against the base CSR in sections 1..7).
  kVersionScalars = 16,    ///< VersionScalarsRecord
  kDeltaAdds = 17,         ///< {u32 user, u32 merchant}[] canonical order
  kDeltaDead = 18,         ///< int64[] ascending base EdgeIds
  kTouchedUsers = 19,      ///< uint32[] ascending
  kTouchedMerchants = 20,  ///< uint32[] ascending

  // DynamicGraphStore checkpoint extras.
  kStoreState = 32,        ///< StoreStateRecord
  kWindowEvents = 33,      ///< SnapshotTransaction[] (timestamp order)
  kDetectorClock = 34,     ///< DetectorClockRecord (WindowedDetector)
  kReorderEvents = 35,     ///< ReorderEventRecord[] (WindowedDetector)
  kWalPosition = 36,       ///< WalPositionRecord (durable-ingest WAL)
};

struct SnapshotHeader {
  uint64_t magic = kSnapshotMagic;
  uint32_t endian_tag = kEndianTag;
  uint32_t schema_version = kSchemaVersion;
  uint32_t payload_kind = 0;
  uint32_t section_count = 0;
  /// graph/fingerprint.h hash of the payload's *live* edge set (for a
  /// GraphVersion/checkpoint that is base − dead + adds, not the base).
  uint64_t content_fingerprint = 0;
  int64_t num_users = 0;
  int64_t num_merchants = 0;
  /// Live edge count (== base edge count for kCsrGraph).
  int64_t num_edges = 0;
  /// Total file bytes, padding included (truncation detector).
  uint64_t file_size = 0;
};
static_assert(sizeof(SnapshotHeader) == 64, "header is exactly 64 bytes");

struct SectionEntry {
  uint32_t id = 0;
  uint32_t reserved = 0;
  uint64_t offset = 0;     ///< from file start; multiple of 64
  uint64_t byte_size = 0;  ///< payload bytes (excluding padding)
};
static_assert(sizeof(SectionEntry) == 24);

struct VersionScalarsRecord {
  uint64_t epoch = 0;
  uint64_t flags = 0;  ///< bit 0: version was published compacted
};
static_assert(sizeof(VersionScalarsRecord) == 16);
inline constexpr uint64_t kVersionFlagCompacted = 1;

/// DynamicGraphStoreConfig + scalar runtime state + lifetime counters.
struct StoreStateRecord {
  int64_t cfg_num_users = 0;
  int64_t cfg_num_merchants = 0;
  int64_t cfg_window = 0;
  double cfg_compaction_factor = 0.0;
  int64_t cfg_min_compaction_delta = 0;
  int64_t newest_timestamp = 0;
  uint64_t epoch = 0;
  int64_t events_ingested = 0;
  int64_t events_evicted = 0;
  int64_t edges_added = 0;
  int64_t edges_removed = 0;
  int64_t publishes = 0;
  int64_t compactions = 0;
};
static_assert(sizeof(StoreStateRecord) == 104);

/// WindowedDetector's detection clock (stream/windowed_detector.h).
/// Carries the clock-shaping config knobs too: resuming under a
/// different interval or reorder slack would silently break the
/// bit-identical-resume contract, so the restore path rejects mismatches.
struct DetectorClockRecord {
  int64_t max_seen = 0;
  int64_t last_detection = 0;
  uint64_t next_seq = 0;
  int64_t detection_interval = 0;
  int64_t max_out_of_order = 0;
};
static_assert(sizeof(DetectorClockRecord) == 40);

/// One window event. Mirrors ingest's Transaction, redeclared here so the
/// storage layer stays below the ingest layer in the dependency order.
struct SnapshotTransaction {
  int64_t timestamp = 0;
  uint32_t user = 0;
  uint32_t merchant = 0;
};
static_assert(sizeof(SnapshotTransaction) == 16);

/// Links a kStoreCheckpoint to the durable-ingest WAL that fed it: the
/// seq of the newest WAL record whose batch is fully reflected in the
/// checkpointed state. Recovery replays the WAL strictly after this seq;
/// the writer may truncate segments fully covered by it (and only those —
/// pinned by the checkpoint/WAL lockstep test).
struct WalPositionRecord {
  uint64_t last_applied_seq = 0;
  uint64_t reserved = 0;
};
static_assert(sizeof(WalPositionRecord) == 16);

/// One reorder-buffered (not yet released) event, with its arrival
/// sequence number so equal timestamps replay in the original order.
struct ReorderEventRecord {
  uint64_t seq = 0;
  int64_t timestamp = 0;
  uint32_t user = 0;
  uint32_t merchant = 0;
};
static_assert(sizeof(ReorderEventRecord) == 24);

}  // namespace storage
}  // namespace ensemfdet

#endif  // ENSEMFDET_STORAGE_SNAPSHOT_FORMAT_H_
