#include "storage/mapped_file.h"

#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#define ENSEMFDET_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define ENSEMFDET_HAVE_MMAP 0
#endif

namespace ensemfdet {
namespace storage {

Result<std::shared_ptr<const MappedFile>> MappedFile::Open(
    const std::string& path) {
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
#if ENSEMFDET_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat " + path + ": " +
                           std::strerror(err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IOError(path + " is not a regular file");
  }
  file->size_ = static_cast<size_t>(st.st_size);
  if (file->size_ > 0) {
    void* addr =
        ::mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("cannot mmap " + path + ": " +
                             std::strerror(err));
    }
    file->data_ = static_cast<const std::byte*>(addr);
    file->is_mmap_ = true;
  }
  ::close(fd);  // the mapping outlives the descriptor
#else
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open " + path);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::IOError("cannot size " + path);
  file->fallback_.resize(static_cast<size_t>(size));
  in.seekg(0);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(file->fallback_.data()), size)) {
    return Status::IOError("short read from " + path);
  }
  file->size_ = file->fallback_.size();
  file->data_ = file->fallback_.empty() ? nullptr : file->fallback_.data();
#endif
  return std::shared_ptr<const MappedFile>(std::move(file));
}

MappedFile::~MappedFile() {
#if ENSEMFDET_HAVE_MMAP
  if (is_mmap_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
}

}  // namespace storage
}  // namespace ensemfdet
