// File-operation seam for the durable-write paths (SnapshotWriter, the
// WAL writer): every mutating filesystem operation — append, fsync,
// rename, remove, truncate, directory fsync — goes through a FileOps so
// tests can interpose FaultInjectingFileOps and enumerate every crash
// point in-process. "Crash at operation N" = the Nth mutating op (and
// every op after it) fails; the bytes written by ops before N persist on
// disk exactly as a SIGKILL would leave them.
//
// Durability model (see DESIGN.md §"Durable ingest"):
//   * WritableFile::Append buffers in the OS; Sync() = flush + fsync.
//   * SyncDir(dir) makes a rename/create/unlink inside `dir` itself
//     durable — without it, a power loss can forget the directory entry
//     even though the file's bytes survived.
//
// Production code resolves CurrentFileOps() once per operation; tests
// install an override with ScopedFileOpsOverride (process-global, so it
// covers code that opens files deep inside the storage layer). The
// override is NOT thread-safe against concurrent installs — tests
// serialize their own scopes.
#ifndef ENSEMFDET_STORAGE_FAULT_FILE_H_
#define ENSEMFDET_STORAGE_FAULT_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace ensemfdet {
namespace storage {

/// A sequential-write handle. Not thread-safe.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const void* data, size_t n) = 0;
  /// Flush + fsync: bytes are on stable storage on OK. No-op fsync on
  /// platforms without one (then only the flush happened).
  virtual Status Sync() = 0;
  /// Flush + close (no implicit fsync). Idempotent.
  virtual Status Close() = 0;
};

class FileOps {
 public:
  virtual ~FileOps() = default;

  /// Opens `path` for writing: truncate=true starts empty, false appends
  /// to the existing contents (creating the file either way).
  virtual Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, bool truncate) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  /// Shrinks (or grows, zero-filled) `path` to exactly `size` bytes.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  /// fsyncs the directory itself, committing renames/creates/unlinks of
  /// its entries. No-op where directory fsync does not exist.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// The process's real POSIX-backed implementation.
  static FileOps& Real();
};

/// The ops production code must use; Real() unless a test overrode it.
FileOps& CurrentFileOps();

/// Installs `ops` as CurrentFileOps() for this scope (nullptr = Real()).
class ScopedFileOpsOverride {
 public:
  explicit ScopedFileOpsOverride(FileOps* ops);
  ~ScopedFileOpsOverride();
  ScopedFileOpsOverride(const ScopedFileOpsOverride&) = delete;
  ScopedFileOpsOverride& operator=(const ScopedFileOpsOverride&) = delete;

 private:
  FileOps* previous_;
};

/// Counts and (optionally) fails mutating operations, simulating a crash:
/// once an operation fails, every later one fails too — the state left on
/// disk is exactly what a process killed at that instant would leave.
/// Counted ops: Append, Sync, Rename, RemoveFile, TruncateFile, SyncDir
/// (Close is not counted — closing loses nothing). Not thread-safe.
class FaultInjectingFileOps : public FileOps {
 public:
  explicit FaultInjectingFileOps(FileOps* base = &FileOps::Real());

  Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path, bool truncate) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;

  /// Ops 1..n succeed; op n+1 and everything after fail ("crash after n
  /// operations"). Negative = never fail (counting only). Resets the
  /// crashed state.
  void FailAfter(int64_t ops);
  /// The failing op, when it is an Append, first writes `bytes` bytes of
  /// its payload (a torn write), then the crash begins.
  void set_short_write_bytes(size_t bytes) { short_write_bytes_ = bytes; }
  /// Flips the lowest bit of byte `index` (mod size) of every subsequent
  /// Append payload — bit-rot between the writer and the platter.
  /// Negative disables.
  void set_flip_byte_index(int64_t index) { flip_byte_index_ = index; }

  /// Mutating ops attempted so far (failed attempts included).
  int64_t op_count() const { return op_count_; }
  bool crashed() const { return crashed_; }
  int64_t sync_count() const { return sync_count_; }
  int64_t dir_sync_count() const { return dir_sync_count_; }
  int64_t rename_count() const { return rename_count_; }

 private:
  friend class FaultInjectingWritableFile;

  /// Accounts one mutating op; returns false when the crash has begun
  /// (the op must fail without touching the filesystem).
  bool BeginOp();

  FileOps* base_;
  int64_t fail_after_ = -1;
  bool crashed_ = false;
  int64_t op_count_ = 0;
  size_t short_write_bytes_ = 0;
  int64_t flip_byte_index_ = -1;
  int64_t sync_count_ = 0;
  int64_t dir_sync_count_ = 0;
  int64_t rename_count_ = 0;
};

}  // namespace storage
}  // namespace ensemfdet

#endif  // ENSEMFDET_STORAGE_FAULT_FILE_H_
