// SnapshotWriter: serializes graph payloads into the .efg container
// (storage/snapshot_format.h). The writer is a thin section assembler —
// callers register raw arrays (which must stay alive until Write) and the
// writer lays them out 64-byte-aligned behind the header + section table.
//
// Higher layers own the payload semantics:
//   * WriteCsrGraphSnapshot (here) — a plain CsrGraph, fingerprint
//     computed from the graph.
//   * GraphVersion::SaveSnapshot / DynamicGraphStore checkpoints (ingest
//     layer) — base + delta payloads, fingerprint of the live set.
//
// Writes go to `path + ".tmp"` first and rename over `path` on success,
// so a crashed writer never leaves a half-written snapshot where a reader
// expects a valid one.
#ifndef ENSEMFDET_STORAGE_SNAPSHOT_WRITER_H_
#define ENSEMFDET_STORAGE_SNAPSHOT_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"
#include "storage/snapshot_format.h"

namespace ensemfdet {
namespace storage {

class SnapshotWriter {
 public:
  /// `num_edges` is the payload's live edge count; `fingerprint` the
  /// graph/fingerprint.h hash of that live edge set (readers re-verify).
  SnapshotWriter(PayloadKind kind, int64_t num_users, int64_t num_merchants,
                 int64_t num_edges, uint64_t fingerprint);

  /// Registers one section. `data` is NOT copied — it must stay alive
  /// until Write() returns. Zero-size sections are allowed (e.g. an empty
  /// delta-log); `data` may then be null.
  void AddSection(SectionId id, const void* data, uint64_t byte_size);

  /// Serializes header + section table + aligned payloads to `path`
  /// atomically (tmp file + rename). IOError on any filesystem failure.
  Status Write(const std::string& path) const;

 private:
  SnapshotHeader header_;
  struct PendingSection {
    SectionId id;
    const void* data;
    uint64_t byte_size;
  };
  std::vector<PendingSection> sections_;
};

/// Adds the seven CsrGraph array sections of `graph` (weights only when
/// present) to `writer`. `graph` must outlive the Write() call.
void AddCsrGraphSections(SnapshotWriter* writer, const CsrGraph& graph);

/// Writes `graph` as a kCsrGraph snapshot; the content fingerprint is
/// FingerprintGraph(graph). O(|E|) hash + one sequential write.
Status WriteCsrGraphSnapshot(const CsrGraph& graph, const std::string& path);

}  // namespace storage
}  // namespace ensemfdet

#endif  // ENSEMFDET_STORAGE_SNAPSHOT_WRITER_H_
