#include "storage/wal_format.h"

#include <cstdio>

namespace ensemfdet {
namespace storage {

std::string WalSegmentFileName(uint64_t first_seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%016llx.efw",
                static_cast<unsigned long long>(first_seq));
  return buf;
}

bool ParseWalSegmentFileName(const std::string& name, uint64_t* first_seq) {
  // wal-<16 lowercase hex>.efw, exactly 24 characters.
  if (name.size() != 24 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(20, 4, ".efw") != 0) {
    return false;
  }
  uint64_t seq = 0;
  for (size_t i = 4; i < 20; ++i) {
    const char c = name[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
    seq = (seq << 4) | digit;
  }
  *first_seq = seq;
  return true;
}

}  // namespace storage
}  // namespace ensemfdet
