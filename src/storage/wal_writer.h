// Append-only WAL writer over .efw segments (storage/wal_format.h) —
// the durability half of the durable-ingest layer. One writer owns a WAL
// directory; records are CRC32C-framed, appended in one contiguous write
// each, and made durable per the configured fsync policy BEFORE the
// append returns — the caller may ack upstream the moment Append is OK.
//
// Fsync policies (the ack/durability contract, DESIGN.md §"Durable
// ingest"):
//   * kNone   — never fsync; an OS/power crash may lose acked records
//               (a plain process kill cannot — the page cache survives).
//   * kBatch  — group commit: fsync once every `group_commit_records`
//               appends, at rotation, and at Close.
//   * kAlways — fsync after every record; an acked record survives power
//               loss.
//
// Open() recovers the directory: scans the segments, physically
// truncates a torn tail (the interrupted final append), removes a
// segment whose own header never landed, and continues the seq chain
// where the log ends. Truncation by checkpoint (TruncateThrough) removes
// whole segments whose records are all covered; the active segment is
// never removed, which keeps the seq chain anchored.
//
// Not thread-safe; callers (the service's streaming sessions) serialize
// per session.
#ifndef ENSEMFDET_STORAGE_WAL_WRITER_H_
#define ENSEMFDET_STORAGE_WAL_WRITER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/fault_file.h"
#include "storage/wal_format.h"

namespace ensemfdet {
namespace storage {

enum class WalFsyncPolicy {
  kNone,
  kBatch,
  kAlways,
};

/// "none" / "batch" / "always".
const char* WalFsyncPolicyName(WalFsyncPolicy policy);
/// Inverse of WalFsyncPolicyName; InvalidArgument for unknown names.
Result<WalFsyncPolicy> ParseWalFsyncPolicy(const std::string& name);

struct WalWriterOptions {
  WalFsyncPolicy fsync = WalFsyncPolicy::kBatch;
  /// Group-commit interval for kBatch: fsync every this many appends.
  int64_t group_commit_records = 16;
  /// Rotate to a new segment once the active one reaches this size.
  uint64_t segment_bytes = 4ull << 20;
};

class WalWriter {
 public:
  /// Opens (creating the directory if needed) and recovers `dir`; see the
  /// file comment. IOError on unreadable/corrupt-history segments.
  static Result<WalWriter> Open(std::string dir, WalWriterOptions options);

  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  /// Best-effort Close() (errors swallowed — call Close() to see them).
  ~WalWriter();

  /// Frames and appends one record; returns its seq. On OK the record is
  /// as durable as the fsync policy promises and may be acked. `n` must
  /// be <= kWalMaxPayloadBytes. On failure the record is NOT acked; the
  /// on-disk tail may be torn and is repaired by the next Open().
  Result<uint64_t> Append(const void* payload, size_t n, int64_t timestamp);

  /// Forces the active segment to stable storage now (an explicit group-
  /// commit point; resets the kBatch countdown).
  Status Sync();

  /// Removes every segment whose records ALL have seq <= `through_seq`
  /// (the active segment is kept regardless). Call only after a
  /// checkpoint covering `through_seq` is durably on disk — pinned by
  /// tests/storage_checkpoint_test.cc's lockstep test.
  Status TruncateThrough(uint64_t through_seq);

  /// Final fsync (per policy) + close. Idempotent.
  Status Close();

  /// Seq of the most recently appended record (0 = log is empty).
  uint64_t last_seq() const { return next_seq_ - 1; }
  uint64_t next_seq() const { return next_seq_; }
  /// Open() found and repaired a torn tail.
  bool recovered_torn_tail() const { return recovered_torn_tail_; }
  /// Segments currently on disk (active included).
  int64_t segment_count() const {
    return static_cast<int64_t>(segments_.size());
  }
  const WalWriterOptions& options() const { return options_; }

 private:
  WalWriter(std::string dir, WalWriterOptions options);

  /// Creates the next segment (header write + per-policy dir sync) and
  /// makes it active.
  Status CreateSegment(uint64_t first_seq);
  Status SyncActive();

  std::string dir_;
  WalWriterOptions options_;

  struct Segment {
    std::string path;
    uint64_t first_seq = 0;
  };
  std::vector<Segment> segments_;  ///< first_seq order; back() is active

  std::unique_ptr<WritableFile> active_;
  uint64_t active_bytes_ = 0;
  uint64_t next_seq_ = 1;
  int64_t unsynced_records_ = 0;
  bool recovered_torn_tail_ = false;
  bool closed_ = false;
};

}  // namespace storage
}  // namespace ensemfdet

#endif  // ENSEMFDET_STORAGE_WAL_WRITER_H_
