#include "common/rng.h"

#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace ensemfdet {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro must not start at the all-zero state; SplitMix64 of any seed
  // cannot produce four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  ENSEMFDET_DCHECK(bound != 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

Rng Rng::Split(uint64_t index) const {
  // Mix (seed, index) so that distinct (parent, index) pairs give distinct,
  // well-separated child seeds.
  uint64_t sm = seed_ ^ (0x632be59bd9b4e019ULL * (index + 1));
  uint64_t child_seed = SplitMix64(&sm);
  return Rng(child_seed);
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  std::vector<uint64_t> out;
  SampleWithoutReplacement(n, k, &out);
  return out;
}

void Rng::SampleWithoutReplacement(uint64_t n, uint64_t k,
                                   std::vector<uint64_t>* out) {
  ENSEMFDET_CHECK(k <= n) << "sample size " << k << " > population " << n;
  // Partial Fisher-Yates on a virtual array: `perm` records only displaced
  // slots, so memory is O(k) and time O(k) regardless of n.
  std::unordered_map<uint64_t, uint64_t> perm;
  perm.reserve(static_cast<size_t>(k) * 2);
  out->clear();
  out->reserve(static_cast<size_t>(k));
  for (uint64_t i = 0; i < k; ++i) {
    uint64_t j = i + NextBounded(n - i);
    uint64_t vi, vj;
    auto it = perm.find(i);
    vi = (it == perm.end()) ? i : it->second;
    it = perm.find(j);
    vj = (it == perm.end()) ? j : it->second;
    out->push_back(vj);
    perm[j] = vi;
  }
}

}  // namespace ensemfdet
