// Typed accessors for environment-variable configuration.
//
// Benches and examples read their scale/thread knobs from the environment
// (ENSEMFDET_SCALE, ENSEMFDET_THREADS, ...) so the same binary serves both
// quick CI runs and full-scale reproductions.
#ifndef ENSEMFDET_COMMON_ENV_H_
#define ENSEMFDET_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace ensemfdet {

/// Returns the env var's value or `fallback` if unset/empty.
std::string GetEnvString(const char* name, const std::string& fallback);

/// Returns the env var parsed as int, or `fallback` if unset or unparsable.
int GetEnvInt(const char* name, int fallback);

/// Returns the env var parsed as int64, or `fallback` if unset/unparsable.
int64_t GetEnvInt64(const char* name, int64_t fallback);

/// Returns the env var parsed as double, or `fallback` if unset/unparsable.
double GetEnvDouble(const char* name, double fallback);

}  // namespace ensemfdet

#endif  // ENSEMFDET_COMMON_ENV_H_
