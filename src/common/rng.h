// Deterministic, splittable pseudo-random number generation.
//
// Every randomized component in the library takes an explicit seed so that
// experiments are reproducible and ensemble members can draw independent
// streams: `Rng::Split(i)` derives the i-th child stream via SplitMix64,
// which is how ENSEMFDET gives each of its N sampled graphs its own
// generator regardless of thread scheduling.
//
// The core generator is xoshiro256++ (public-domain algorithm by Blackman &
// Vigna): fast, 256-bit state, passes BigCrush. We avoid std::mt19937 both
// for speed and because its seeding is easy to get wrong.
#ifndef ENSEMFDET_COMMON_RNG_H_
#define ENSEMFDET_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ensemfdet {

/// SplitMix64 single step: maps any 64-bit value to a well-mixed 64-bit
/// value. Used for seeding and stream splitting.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256++ pseudo-random generator with explicit-seed construction and
/// cheap stream splitting.
class Rng {
 public:
  /// Seeds the 256-bit state from `seed` via four SplitMix64 steps.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit draw.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  /// `bound` must be nonzero.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double NextDouble();

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal via polar Box-Muller (caches the spare deviate).
  double NextGaussian();

  /// Derives an independent child generator for stream `index`. Children of
  /// the same parent with distinct indices have uncorrelated sequences.
  Rng Split(uint64_t index) const;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Returns `k` distinct values drawn uniformly from [0, n) in selection
  /// order (partial Fisher-Yates over a virtual index array; O(k) memory
  /// beyond the output). Requires k <= n.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Allocation-reusing variant: fills `*out` (cleared first, capacity
  /// retained) with the same draw the returning overload produces for the
  /// same generator state — hot loops pass a per-worker scratch vector so
  /// repeated sampling stops allocating after warm-up.
  void SampleWithoutReplacement(uint64_t n, uint64_t k,
                                std::vector<uint64_t>* out);

 private:
  uint64_t s_[4];
  uint64_t seed_;  // retained so Split can mix parent identity
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_COMMON_RNG_H_
