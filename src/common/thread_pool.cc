#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/env.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ensemfdet {

namespace {

// Resolved once; recording through raw pointers afterwards is lock-free.
// Worker utilization is derivable on the scrape side:
// sum(task_run_seconds) / (workers * uptime).
struct PoolMetrics {
  obs::Counter* tasks_total;
  obs::Gauge* queue_depth;
  obs::Gauge* workers;
  obs::Histogram* task_wait_seconds;
  obs::Histogram* task_run_seconds;
};

PoolMetrics& Metrics() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static PoolMetrics m{
      reg.GetCounter("ensemfdet_pool_tasks_total",
                     "Tasks enqueued on the shared thread pool."),
      reg.GetGauge("ensemfdet_pool_queue_depth",
                   "Tasks waiting in the pool queue right now."),
      reg.GetGauge("ensemfdet_pool_workers",
                   "Worker threads of the most recently created pool."),
      reg.GetHistogram("ensemfdet_pool_task_wait_seconds",
                       obs::Histogram::Unit::kSeconds,
                       "Queue wait from enqueue to execution start."),
      reg.GetHistogram("ensemfdet_pool_task_run_seconds",
                       obs::Histogram::Unit::kSeconds,
                       "Task execution time on a worker thread."),
  };
  return m;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  // Width of the most recently created pool; in practice one default
  // pool serves the whole process (examples, CLI, service).
  Metrics().workers->Set(num_threads);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  const int64_t enqueue_ns =
      obs::MetricsRuntimeEnabled() ? obs::TraceNowNs() : -1;
  // Capture the submitter's causal context so the worker can reinstall
  // it: spans the task opens then parent to the submitting span, not to
  // whatever the worker ran last. The flow event pair (s here, f at
  // execution) draws the cross-thread arrow in trace viewers.
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  uint64_t flow_id = 0;
  if (obs::TraceEnabled() && ctx.valid()) {
    flow_id = obs::NewSpanId();
    obs::AppendFlowEvent("pool_flow", 's', flow_id);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ENSEMFDET_CHECK(!shutdown_) << "Submit after shutdown";
    queue_.push_back(Pending{std::move(task), enqueue_ns, ctx, flow_id});
    ++in_flight_;
  }
  PoolMetrics& m = Metrics();
  m.tasks_total->Increment();
  m.queue_depth->Add(1);
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    int64_t enqueue_ns = -1;
    obs::TraceContext ctx;
    uint64_t flow_id = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front().fn);
      enqueue_ns = queue_.front().enqueue_ns;
      ctx = queue_.front().ctx;
      flow_id = queue_.front().flow_id;
      queue_.pop_front();
    }
    PoolMetrics& m = Metrics();
    m.queue_depth->Add(-1);
    if (enqueue_ns >= 0) {
      m.task_wait_seconds->Record(obs::TraceNowNs() - enqueue_ns);
    }
    {
      // Install the submitter's context (or clear a stale one: ctx may
      // be invalid) for the task's duration. pool_task is detached — it
      // times the scheduling layer without inserting itself into the
      // detection tree, so the tree's *shape* is identical at any pool
      // width (only flow arrows and pool_task wrappers vary).
      obs::ScopedTraceContext scope(ctx);
      if (flow_id != 0) obs::AppendFlowEvent("pool_flow", 'f', flow_id);
      obs::TraceSpan span(m.task_run_seconds, "pool_task",
                         obs::TraceSpan::Link::kDetached);
      task();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

namespace {

// Shared state of one ParallelFor: workers and the caller race to claim
// chunks off `next`; whoever completes the last chunk wakes the caller.
// Heap-allocated (shared_ptr) because enqueued helper lambdas can outlive
// the caller's stack frame: a helper that wakes after every chunk is
// claimed still reads `next` before returning.
struct ParallelForState {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t chunk = 0;
  int64_t num_chunks = 0;
  const std::function<void(int64_t)>* fn = nullptr;

  std::atomic<int64_t> next{0};
  std::atomic<int64_t> completed{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::mutex done_mu;
  std::condition_variable done_cv;

  // Claims and runs chunks until none remain. Safe to call from any
  // thread, any number of threads at once.
  void RunChunks() {
    for (;;) {
      const int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const int64_t lo = begin + c * chunk;
      const int64_t hi = std::min(end, lo + chunk);
      try {
        for (int64_t i = lo; i < hi; ++i) (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    }
  }
};

// Shared state of one ParallelForWorkStealing. Per-participant deques of
// [lo, hi) ranges under per-deque mutexes (items are whole ensemble
// members or residual components — coarse enough that a mutex per claim
// is noise next to the item itself). Owners pop single items off their
// own front; thieves take the upper half of a victim's back range, so
// the two ends never contend for the same items and a stolen slice is
// itself re-stealable. Heap-allocated (shared_ptr) for the same reason
// as ParallelForState: enqueued helpers can outlive the caller's frame.
struct WorkStealState {
  struct Range {
    int64_t lo;
    int64_t hi;
  };
  struct ParticipantDeque {
    std::mutex mu;
    std::deque<Range> ranges;
  };

  explicit WorkStealState(int64_t num_participants)
      : deques(static_cast<size_t>(num_participants)) {}

  std::vector<ParticipantDeque> deques;
  int64_t total = 0;
  const std::function<void(int64_t)>* fn = nullptr;

  std::atomic<int64_t> completed{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::mutex done_mu;
  std::condition_variable done_cv;

  // Claims one item off participant p's own front. The remainder stays
  // in the deque, visible to thieves while p executes the item.
  bool PopOwnFront(size_t p, int64_t* item) {
    ParticipantDeque& d = deques[p];
    std::lock_guard<std::mutex> lock(d.mu);
    if (d.ranges.empty()) return false;
    Range& front = d.ranges.front();
    *item = front.lo++;
    if (front.lo >= front.hi) d.ranges.pop_front();
    return true;
  }

  // Steals the upper half of some victim's back range into p's deque.
  // Scans victims round-robin from p+1 so contention spreads instead of
  // piling onto participant 0. The victim lock is released before the
  // own-deque lock is taken — holding both would be an AB/BA deadlock
  // between two participants stealing from each other.
  bool StealHalf(size_t p) {
    const size_t n = deques.size();
    for (size_t step = 1; step < n; ++step) {
      ParticipantDeque& victim = deques[(p + step) % n];
      Range stolen{0, 0};
      {
        std::lock_guard<std::mutex> lock(victim.mu);
        if (victim.ranges.empty()) continue;
        Range& back = victim.ranges.back();
        const int64_t len = back.hi - back.lo;
        if (len >= 2) {
          const int64_t mid = back.lo + len / 2;
          stolen = {mid, back.hi};
          back.hi = mid;
        } else {
          stolen = back;
          victim.ranges.pop_back();
        }
      }
      std::lock_guard<std::mutex> own_lock(deques[p].mu);
      deques[p].ranges.push_back(stolen);
      return true;
    }
    return false;
  }

  void RunItem(int64_t item) {
    try {
      (*fn)(item);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
    if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
      std::lock_guard<std::mutex> lock(done_mu);
      done_cv.notify_all();
    }
  }

  // Work until no claimable item remains anywhere. Items currently
  // *executing* on other participants are invisible here, so returning
  // means "nothing left to help with", not "all complete" — the caller
  // separately waits on completed == total.
  void Participate(size_t p) {
    int64_t item;
    for (;;) {
      if (PopOwnFront(p, &item)) {
        RunItem(item);
      } else if (!StealHalf(p)) {
        return;
      }
    }
  }
};

}  // namespace

void ThreadPool::ParallelForWorkStealing(
    int64_t begin, int64_t end, const std::function<void(int64_t)>& fn) {
  if (begin >= end) return;
  const int64_t total = end - begin;
  if (total == 1) {
    fn(begin);
    return;
  }

  // Participant 0 is the caller; every pool thread that picks up a helper
  // task gets its own deque slot.
  const int64_t num_helpers =
      std::min<int64_t>(total - 1, static_cast<int64_t>(num_threads()));
  const int64_t num_participants = num_helpers + 1;

  auto state = std::make_shared<WorkStealState>(num_participants);
  state->total = total;
  state->fn = &fn;

  // Seed each deque with a contiguous slice — the static split is only
  // the starting point; stealing erases any skew it embodies.
  for (int64_t p = 0; p < num_participants; ++p) {
    const int64_t lo = begin + p * total / num_participants;
    const int64_t hi = begin + (p + 1) * total / num_participants;
    if (lo < hi) {
      state->deques[static_cast<size_t>(p)].ranges.push_back({lo, hi});
    }
  }

  for (int64_t h = 1; h < num_participants; ++h) {
    Enqueue([state, h] { state->Participate(static_cast<size_t>(h)); });
  }
  state->Participate(0);

  std::unique_lock<std::mutex> lock(state->done_mu);
  state->done_cv.wait(lock, [&] {
    return state->completed.load(std::memory_order_acquire) == total;
  });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t)>& fn) {
  if (begin >= end) return;
  const int64_t total = end - begin;
  const int64_t num_chunks =
      std::min<int64_t>(total, static_cast<int64_t>(num_threads()) * 4);

  auto state = std::make_shared<ParallelForState>();
  state->begin = begin;
  state->end = end;
  state->num_chunks = num_chunks;
  state->chunk = (total + num_chunks - 1) / num_chunks;
  state->fn = &fn;

  // The caller participates in its own chunks below, so ParallelFor makes
  // progress even when every worker is busy — in particular a *worker*
  // may call ParallelFor (a detection job fanning out on the pool that
  // runs it) without deadlocking the pool: worst case it drains all its
  // chunks itself.
  // num_chunks - 1: the caller covers the last claimant slot itself, so a
  // full complement of helpers would leave one task with nothing to claim.
  const int64_t num_helpers =
      std::min<int64_t>(num_chunks - 1, static_cast<int64_t>(num_threads()));
  for (int64_t h = 0; h < num_helpers; ++h) {
    Enqueue([state] { state->RunChunks(); });
  }
  state->RunChunks();

  std::unique_lock<std::mutex> lock(state->done_mu);
  state->done_cv.wait(lock, [&] {
    return state->completed.load(std::memory_order_acquire) == num_chunks;
  });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

ThreadPool& DefaultThreadPool() {
  static ThreadPool pool(GetEnvInt("ENSEMFDET_THREADS", 0));
  return pool;
}

}  // namespace ensemfdet
