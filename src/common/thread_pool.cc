#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/env.h"
#include "common/logging.h"

namespace ensemfdet {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ENSEMFDET_CHECK(!shutdown_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t)>& fn) {
  if (begin >= end) return;
  const int64_t total = end - begin;
  const int64_t num_chunks =
      std::min<int64_t>(total, static_cast<int64_t>(num_threads()) * 4);
  const int64_t chunk = (total + num_chunks - 1) / num_chunks;

  std::atomic<int64_t> remaining{num_chunks};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::mutex done_mu;
  std::condition_variable done_cv;

  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t lo = begin + c * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    Enqueue([&, lo, hi] {
      try {
        for (int64_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock,
               [&] { return remaining.load(std::memory_order_acquire) == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& DefaultThreadPool() {
  static ThreadPool pool(GetEnvInt("ENSEMFDET_THREADS", 0));
  return pool;
}

}  // namespace ensemfdet
