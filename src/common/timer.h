// Wall-clock timing utilities for Table III and the micro-benches.
#ifndef ENSEMFDET_COMMON_TIMER_H_
#define ENSEMFDET_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace ensemfdet {

/// Monotonic stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction / last Restart.
  double ElapsedSeconds() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Integer nanoseconds elapsed — the precision TraceSpan records at;
  /// no double rounding on the hot path.
  int64_t ElapsedNanos() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Formats a duration as "12.345 sec" / "87.2 ms" with sensible units.
std::string FormatDuration(double seconds);

}  // namespace ensemfdet

#endif  // ENSEMFDET_COMMON_TIMER_H_
