// Minimal leveled logging plus CHECK macros for internal invariants.
//
// Severity is filtered by SetLogLevel / the ENSEMFDET_LOG_LEVEL env var
// (0=DEBUG .. 3=ERROR; default INFO). CHECK failures print the failing
// condition with file:line and abort — they guard programmer invariants,
// never user input (user input goes through Status).
#ifndef ENSEMFDET_COMMON_LOGGING_H_
#define ENSEMFDET_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ensemfdet {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style message collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting (CHECK failures).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define ENSEMFDET_LOG(level)                                          \
  ::ensemfdet::internal::LogMessage(::ensemfdet::LogLevel::k##level,  \
                                    __FILE__, __LINE__)

/// Aborts with a diagnostic when `condition` is false.
#define ENSEMFDET_CHECK(condition)                                   \
  if (!(condition))                                                  \
  ::ensemfdet::internal::FatalLogMessage(__FILE__, __LINE__, #condition)

#define ENSEMFDET_CHECK_OK(expr)                                     \
  do {                                                               \
    ::ensemfdet::Status _st = (expr);                                \
    ENSEMFDET_CHECK(_st.ok()) << _st.ToString();                     \
  } while (0)

#ifndef NDEBUG
#define ENSEMFDET_DCHECK(condition) ENSEMFDET_CHECK(condition)
#else
#define ENSEMFDET_DCHECK(condition) \
  if (false && !(condition))        \
  ::ensemfdet::internal::FatalLogMessage(__FILE__, __LINE__, #condition)
#endif

}  // namespace ensemfdet

#endif  // ENSEMFDET_COMMON_LOGGING_H_
