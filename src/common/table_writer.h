// Tabular output helpers for the benchmark harness.
//
// Every figure/table bench prints (a) machine-readable CSV rows so the
// paper's plots can be regenerated with any plotting tool, and (b) an
// aligned markdown table for human reading. Both come from the same
// TableWriter so the two views can never disagree.
#ifndef ENSEMFDET_COMMON_TABLE_WRITER_H_
#define ENSEMFDET_COMMON_TABLE_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ensemfdet {

/// Collects rows of string cells under a fixed header and renders them as
/// CSV or an aligned markdown table.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> cells);

  size_t num_rows() const { return rows_.size(); }

  /// Writes `header\nrow\n...` in RFC-4180-ish CSV (cells containing comma,
  /// quote or newline are quoted).
  void WriteCsv(std::ostream* os) const;

  /// Writes an aligned `| a | b |` markdown table with a separator rule.
  void WriteMarkdown(std::ostream* os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places ("0.1234").
std::string FormatDouble(double v, int digits = 4);

/// Formats an integer with thousands separators ("1,023,846").
std::string FormatCount(int64_t v);

}  // namespace ensemfdet

#endif  // ENSEMFDET_COMMON_TABLE_WRITER_H_
