#include "common/hash.h"

namespace ensemfdet {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

// SplitMix64 finalizer (Stafford mix 13): bijective avalanche over 64 bits.
uint64_t Avalanche(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

uint64_t Hash64(const void* data, size_t len, uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = kFnvOffset ^ Avalanche(seed);
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  // Fold the length in so prefixes of zero bytes don't collide, then
  // avalanche: raw FNV-1a mixes low bits poorly.
  return Avalanche(h ^ (static_cast<uint64_t>(len) << 1));
}

uint64_t HashCombine(uint64_t h, uint64_t v) {
  // 0x9e3779b97f4a7c15 = 2^64 / golden ratio, the canonical sequence salt.
  h ^= Avalanche(v) + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4);
  return Avalanche(h);
}

}  // namespace ensemfdet
