// Status / Result<T> error-handling primitives in the Arrow/RocksDB idiom.
//
// Fallible operations return Status (or Result<T> for value-producing ones)
// instead of throwing. Internal invariant violations use ENSEMFDET_CHECK
// (logging.h), which aborts: a broken invariant is a bug, not an error the
// caller can handle.
#ifndef ENSEMFDET_COMMON_STATUS_H_
#define ENSEMFDET_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace ensemfdet {

/// Machine-readable error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kFailedPrecondition,
  kNotImplemented,
  kInternal,
  kResourceExhausted,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// The outcome of a fallible operation: either OK or a code plus message.
///
/// Cheap to copy in the OK case (no allocation). Construct error statuses
/// through the named factories, e.g. `Status::InvalidArgument("bad ratio")`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining its absence.
///
/// Access the value only after checking `ok()`; `ValueOrDie()` aborts on
/// error statuses and is intended for tests and examples.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return some_t;`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status: `return Status::IOError(...);`.
  /// An OK status carries no value; storing it would make ok() lie, so it
  /// degrades to an Internal error.
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::in_place_type<Status>,
              status.ok()
                  ? Status::Internal("Result constructed from OK Status")
                  : std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    // get_if (not get) so the value-holding path never touches the Status
    // alternative — also sidesteps a GCC 12 -O3 maybe-uninitialized false
    // positive on std::variant.
    const Status* error = std::get_if<Status>(&repr_);
    return error != nullptr ? *error : kOk;
  }

  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  /// Returns the value, aborting the process if this Result holds an error.
  const T& ValueOrDie() const&;
  T&& ValueOrDie() &&;

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

namespace internal {
/// Aborts with the status message; out-of-line to keep headers light.
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
const T& Result<T>::ValueOrDie() const& {
  if (!ok()) internal::DieOnBadResultAccess(status());
  return value();
}

template <typename T>
T&& Result<T>::ValueOrDie() && {
  if (!ok()) internal::DieOnBadResultAccess(status());
  return std::move(*this).value();
}

/// Propagates a non-OK Status to the caller (function must return Status).
#define ENSEMFDET_RETURN_NOT_OK(expr)            \
  do {                                           \
    ::ensemfdet::Status _st = (expr);            \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a Result<T> expression, propagating error Status, else binding
/// the value to `lhs`. `lhs` may include a declaration, e.g.
/// ENSEMFDET_ASSIGN_OR_RETURN(auto g, LoadGraph(path));
#define ENSEMFDET_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  ENSEMFDET_ASSIGN_OR_RETURN_IMPL_(                                   \
      ENSEMFDET_STATUS_CONCAT_(_result, __LINE__), lhs, rexpr)

#define ENSEMFDET_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                     \
  if (!tmp.ok()) return tmp.status();                     \
  lhs = std::move(tmp).value()

#define ENSEMFDET_STATUS_CONCAT_INNER_(a, b) a##b
#define ENSEMFDET_STATUS_CONCAT_(a, b) ENSEMFDET_STATUS_CONCAT_INNER_(a, b)

}  // namespace ensemfdet

#endif  // ENSEMFDET_COMMON_STATUS_H_
