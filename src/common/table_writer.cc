#include "common/table_writer.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace ensemfdet {

namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string CsvEscape(const std::string& cell) {
  if (!NeedsQuoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  ENSEMFDET_CHECK(!header_.empty());
}

void TableWriter::AddRow(std::vector<std::string> cells) {
  ENSEMFDET_CHECK(cells.size() == header_.size())
      << "row has " << cells.size() << " cells, header has "
      << header_.size();
  rows_.push_back(std::move(cells));
}

void TableWriter::WriteCsv(std::ostream* os) const {
  auto write_row = [os](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) *os << ',';
      *os << CsvEscape(row[i]);
    }
    *os << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

void TableWriter::WriteMarkdown(std::ostream* os) const {
  std::vector<size_t> width(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto write_row = [&](const std::vector<std::string>& row) {
    *os << '|';
    for (size_t i = 0; i < row.size(); ++i) {
      *os << ' ' << row[i] << std::string(width[i] - row[i].size(), ' ')
          << " |";
    }
    *os << '\n';
  };
  write_row(header_);
  *os << '|';
  for (size_t i = 0; i < header_.size(); ++i) {
    *os << std::string(width[i] + 2, '-') << '|';
  }
  *os << '\n';
  for (const auto& row : rows_) write_row(row);
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatCount(int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (v < 0) out += '-';
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace ensemfdet
