#include "common/env.h"

#include <cstdlib>

namespace ensemfdet {

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

int GetEnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

int64_t GetEnvInt64(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

}  // namespace ensemfdet
