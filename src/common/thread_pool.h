// Fixed-size thread pool used to run the N sample→FDET jobs of ENSEMFDET in
// parallel (Algorithm 2, "begin run in parallel").
//
// Design notes:
//  - Tasks are type-erased std::function<void()>; callers wanting results
//    use Submit() which wraps the callable in a std::packaged_task and
//    returns a std::future.
//  - ParallelFor partitions [begin, end) into contiguous chunks; each chunk
//    index is deterministic, so randomized workloads that Split() their RNG
//    by item index produce identical results at any thread count — this is
//    what makes the ensemble's output independent of parallelism, a property
//    tested in ensemble tests.
#ifndef ENSEMFDET_COMMON_THREAD_POOL_H_
#define ENSEMFDET_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace_context.h"

namespace ensemfdet {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>=1; pass 0 to use hardware_concurrency).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    Enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Runs fn(i) for every i in [begin, end), distributing items across the
  /// pool, and blocks until all complete. fn must be safe to invoke
  /// concurrently for distinct i. Exceptions propagate from the first
  /// failing item (rethrown on the calling thread).
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& fn);

  /// ParallelFor with work stealing: each participant (the caller plus up
  /// to num_threads() pool helpers) owns a deque seeded with a contiguous
  /// slice of [begin, end); owners claim items off their own front, and a
  /// participant that runs dry steals the upper half of a victim's back
  /// range. Use instead of ParallelFor when per-item cost is heavy and
  /// skewed (ensemble members, residual components): a static split
  /// strands the tail of a skewed distribution on one worker, stealing
  /// rebalances it. Same contract otherwise: caller participates (safe to
  /// call from a worker), blocks until all items complete, first failing
  /// item's exception rethrown on the calling thread. Helpers ride the
  /// normal Enqueue path, so the causal-trace shape is identical to
  /// ParallelFor's at every width (detached pool_task wrappers only).
  /// Deterministic outputs are the caller's job, exactly as with
  /// ParallelFor: fn(i) must depend only on i, never on which thread or
  /// in which order items run.
  void ParallelForWorkStealing(int64_t begin, int64_t end,
                               const std::function<void(int64_t)>& fn);

  /// Blocks until every task enqueued so far has finished.
  void WaitIdle();

 private:
  struct Pending {
    std::function<void()> fn;
    int64_t enqueue_ns;  // obs trace clock at enqueue; -1 = not stamped
    // Submitter's causal context, captured at enqueue and reinstalled
    // around execution — this is the cross-thread hop that keeps one
    // detection's span tree connected (DESIGN.md "Causal tracing").
    obs::TraceContext ctx;
    uint64_t flow_id;  // ties the Chrome flow arrow (s→f); 0 = no flow
  };

  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<Pending> queue_;
  std::mutex mu_;
  std::condition_variable cv_;        // task available or shutting down
  std::condition_variable idle_cv_;   // all work drained
  int64_t in_flight_ = 0;             // queued + executing
  bool shutdown_ = false;
};

/// Process-wide default pool, sized from ENSEMFDET_THREADS env var if set,
/// otherwise hardware concurrency. Intended for examples/benches; library
/// components accept an explicit pool.
ThreadPool& DefaultThreadPool();

}  // namespace ensemfdet

#endif  // ENSEMFDET_COMMON_THREAD_POOL_H_
