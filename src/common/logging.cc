#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/flight_recorder.h"

namespace ensemfdet {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::once_flag g_env_init;

// stderr writes from the thread pool interleave without this.
std::mutex& EmitMutex() {
  static std::mutex m;
  return m;
}

void InitLevelFromEnvOnce() {
  std::call_once(g_env_init, [] {
    const char* env = std::getenv("ENSEMFDET_LOG_LEVEL");
    if (env != nullptr && *env != '\0') {
      int v = std::atoi(env);
      if (v >= 0 && v <= 3) g_log_level.store(v, std::memory_order_relaxed);
    }
  });
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  InitLevelFromEnvOnce();
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(GetLogLevel())) return;
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), Basename(file_),
               line_, stream_.str().c_str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition)
    : file_(file), line_(line) {
  stream_ << "Check failed: " << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  {
    std::lock_guard<std::mutex> lock(EmitMutex());
    std::fprintf(stderr, "[FATAL %s:%d] %s\n", Basename(file_), line_,
                 stream_.str().c_str());
  }
  // Preserve the black box with the CHECK's own message before abort()
  // raises SIGABRT (whose handler would only know the signal number).
  // This runs in normal context — the dump itself stays lock-free, so a
  // CHECK failing on any thread, locks held or not, cannot deadlock it.
  obs::DumpFlightRecorder(stream_.str().c_str());
  std::abort();
}

}  // namespace internal

}  // namespace ensemfdet
