// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum framing every WAL record and segment header carries
// (storage/wal_format.h). Chosen over the plain FNV hashes in
// common/hash.h because CRC32C detects the failure modes durable storage
// actually exhibits — torn writes, single-bit rot, short sectors — with
// guaranteed burst-error coverage, and because it is the industry framing
// checksum (RocksDB / LevelDB WALs, ext4 metadata, iSCSI), so the on-disk
// format stays recognizable.
//
// Software implementation (slice-by-one table): no SSE4.2 dependency, so
// the same bytes verify on any host. WAL records are small (a few KiB);
// throughput is not the bottleneck — fsync is.
#ifndef ENSEMFDET_COMMON_CRC32C_H_
#define ENSEMFDET_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace ensemfdet {

/// CRC32C of `data[0..n)`. Equivalent to Extend(0, data, n).
uint32_t Crc32c(const void* data, size_t n);

/// Extends a running CRC32C with `n` more bytes (streaming use).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// Masked form for values stored alongside the data they cover (the
/// LevelDB trick): a CRC of bytes that themselves contain a CRC is
/// error-prone, so stored checksums are rotated + offset. Verifiers
/// unmask before comparing.
inline uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8u;
}
inline uint32_t Crc32cUnmask(uint32_t masked) {
  const uint32_t rot = masked - 0xA282EAD8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace ensemfdet

#endif  // ENSEMFDET_COMMON_CRC32C_H_
