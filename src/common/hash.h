// Stable 64-bit hashing for fingerprints and cache keys.
//
// The service layer identifies immutable graph snapshots and detection
// configurations by content hash, so the hash must be *stable*: the same
// bytes produce the same value on every run, platform, and build — unlike
// std::hash, which libstdc++ is free to (and does) vary. The core is the
// FNV-1a-with-avalanche construction: FNV-1a over the byte stream, then a
// SplitMix64-style finalizer so single-bit input changes diffuse through
// the whole output word.
//
// Collisions: 64 bits is plenty for the registry/cache population sizes a
// service instance sees (birthday bound ≈ 2^32 entries); keys additionally
// carry structural counts so accidental collisions cannot conflate graphs
// of different shapes.
#ifndef ENSEMFDET_COMMON_HASH_H_
#define ENSEMFDET_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>

namespace ensemfdet {

/// FNV-1a over `len` bytes, finalized with an avalanche mix. Stable across
/// runs, platforms, and library versions (the value is part of the cache
/// contract — change it only with a cache-format bump).
uint64_t Hash64(const void* data, size_t len, uint64_t seed = 0);

inline uint64_t Hash64(std::string_view s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

/// Boost-style combiner with full-width mixing: order-sensitive, so
/// sequences hash differently under permutation.
uint64_t HashCombine(uint64_t h, uint64_t v);

/// Hashes a trivially-copyable value by its object representation. Only
/// sensible for types without padding (integers, enums); floating-point
/// values are normalized so +0.0 and -0.0 hash identically.
template <typename T>
uint64_t HashValue(T value, uint64_t seed = 0) {
  static_assert(std::is_trivially_copyable_v<T>);
  if constexpr (std::is_floating_point_v<T>) {
    if (value == 0) value = 0;  // collapse -0.0 onto +0.0
  }
  return Hash64(&value, sizeof(value), seed);
}

}  // namespace ensemfdet

#endif  // ENSEMFDET_COMMON_HASH_H_
