#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace ensemfdet {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

[[noreturn]] void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result::ValueOrDie on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal

}  // namespace ensemfdet
