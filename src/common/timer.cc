#include "common/timer.h"

#include <cstdio>

namespace ensemfdet {

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f sec", seconds);
  }
  return buf;
}

}  // namespace ensemfdet
