#include "eval/report_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace ensemfdet {

Status SaveVotesCsv(const EnsemFDetReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "user_id,votes,weighted_votes\n";
  char line[96];
  for (int64_t u = 0; u < report.votes.num_users(); ++u) {
    const int32_t votes = report.votes.user_votes(static_cast<UserId>(u));
    if (votes == 0) continue;
    const double weighted =
        static_cast<size_t>(u) < report.weighted_user_votes.size()
            ? report.weighted_user_votes[static_cast<size_t>(u)]
            : 0.0;
    std::snprintf(line, sizeof(line), "%" PRId64 ",%d,%.17g\n", u, votes,
                  weighted);
    out << line;
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status SaveOperatingCurveCsv(std::span<const OperatingPoint> points,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "control,num_detected,precision,recall,f1\n";
  char line[160];
  for (const OperatingPoint& p : points) {
    std::snprintf(line, sizeof(line), "%.17g,%" PRId64 ",%.17g,%.17g,%.17g\n",
                  p.control, p.num_detected, p.precision, p.recall, p.f1);
    out << line;
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<VoteRecord>> LoadVotesCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line) || line != "user_id,votes,weighted_votes") {
    return Status::IOError(path + ": missing votes CSV header");
  }
  std::vector<VoteRecord> records;
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    VoteRecord record;
    long long user = 0;
    int votes = 0;
    double weighted = 0.0;
    if (std::sscanf(line.c_str(), "%lld,%d,%lf", &user, &votes, &weighted) !=
            3 ||
        user < 0) {
      return Status::IOError(path + ":" + std::to_string(line_no) +
                             ": malformed votes row");
    }
    record.user = static_cast<UserId>(user);
    record.votes = votes;
    record.weighted_votes = weighted;
    records.push_back(record);
  }
  return records;
}

}  // namespace ensemfdet
