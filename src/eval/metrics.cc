#include "eval/metrics.h"

#include <vector>

namespace ensemfdet {

Confusion CountConfusion(std::span<const UserId> detected,
                         const LabelSet& labels) {
  std::vector<bool> flagged(static_cast<size_t>(labels.num_users()), false);
  for (UserId u : detected) flagged[u] = true;

  Confusion c;
  for (int64_t i = 0; i < labels.num_users(); ++i) {
    const UserId u = static_cast<UserId>(i);
    const bool is_fraud = labels.IsFraud(u);
    if (flagged[u]) {
      is_fraud ? ++c.true_positives : ++c.false_positives;
    } else {
      is_fraud ? ++c.false_negatives : ++c.true_negatives;
    }
  }
  return c;
}

double Precision(const Confusion& c) {
  const int64_t denom = c.true_positives + c.false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(c.true_positives) /
                          static_cast<double>(denom);
}

double Recall(const Confusion& c) {
  const int64_t denom = c.true_positives + c.false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(c.true_positives) /
                          static_cast<double>(denom);
}

double F1Score(const Confusion& c) {
  const double p = Precision(c);
  const double r = Recall(c);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

}  // namespace ensemfdet
