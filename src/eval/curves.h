// Operating-curve assembly: the Precision-Recall and metric-vs-#detected
// series that every evaluation figure (Figs 3-9) plots.
//
// Two sources of operating points:
//   * VoteSweep     — ENSEMFDET: one point per voting threshold T = N..1
//                     (descending T ⇒ ascending #detected, ascending recall)
//   * ScoreSweep    — score-ranking baselines (SPOKEN, FBOX): one point per
//                     requested detection-set size, taking the top-scoring
//                     users
// plus BlockSweep for FRAUDAR's discrete prefix-of-blocks points.
#ifndef ENSEMFDET_EVAL_CURVES_H_
#define ENSEMFDET_EVAL_CURVES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ensemble/vote_table.h"
#include "eval/labels.h"
#include "eval/metrics.h"

namespace ensemfdet {

/// One point on an operating curve.
struct OperatingPoint {
  /// The control value that produced this point: voting threshold T,
  /// detection-set size, or block-prefix length, per the sweep used.
  double control = 0.0;
  int64_t num_detected = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Evaluates MVA at every threshold T in [1, max_threshold], descending T
/// order (so points go from strictest to loosest). Skips duplicate
/// consecutive points with identical num_detected.
std::vector<OperatingPoint> VoteSweep(const VoteTable& votes,
                                      const LabelSet& labels,
                                      int32_t max_threshold);

/// Ranks users by descending score (ties: ascending id) and evaluates the
/// top-`size` prefix for every size in `sizes`.
std::vector<OperatingPoint> ScoreSweep(std::span<const double> scores,
                                       const LabelSet& labels,
                                       std::span<const int64_t> sizes);

/// Evaluates growing unions of user blocks: point i covers blocks [0, i].
/// This reproduces FRAUDAR's discrete polyline of §V-C1.
std::vector<OperatingPoint> BlockSweep(
    const std::vector<std::vector<UserId>>& user_blocks,
    const LabelSet& labels);

/// Area under the PR curve by trapezoidal rule over recall (points sorted
/// by recall internally). Returns 0 for fewer than 2 distinct points.
double PrCurveArea(std::span<const OperatingPoint> points);

/// One point on an ROC curve (§I mentions heuristic methods' "zigzag ROC
/// curve" — this lets benches draw both curve families).
struct RocPoint {
  double threshold = 0.0;
  double true_positive_rate = 0.0;   // recall
  double false_positive_rate = 0.0;  // fp / (fp + tn)
};

/// Full ROC curve of a per-user score ranking: one point per distinct
/// score value (descending), plus the (0,0) start. O(n log n).
std::vector<RocPoint> RocCurve(std::span<const double> scores,
                               const LabelSet& labels);

/// Area under the ROC curve by trapezoid over FPR; 0.5 = chance.
double RocAuc(std::span<const RocPoint> points);

/// Convenience: n geometrically spaced sizes in [lo, hi] (deduplicated,
/// ascending) for ScoreSweep.
std::vector<int64_t> GeometricSizes(int64_t lo, int64_t hi, int n);

}  // namespace ensemfdet

#endif  // ENSEMFDET_EVAL_CURVES_H_
