// Binary-classification metrics over detected user sets: Precision, Recall,
// F1 (the paper's metrics; §V-B1 notes Accuracy is uninformative at fraud
// base rates, so it is intentionally absent).
#ifndef ENSEMFDET_EVAL_METRICS_H_
#define ENSEMFDET_EVAL_METRICS_H_

#include <cstdint>
#include <span>

#include "eval/labels.h"
#include "graph/bipartite_graph.h"

namespace ensemfdet {

struct Confusion {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t false_negatives = 0;
  int64_t true_negatives = 0;

  int64_t num_detected() const { return true_positives + false_positives; }
};

/// Counts detected users (any order, duplicates ignored) against labels.
Confusion CountConfusion(std::span<const UserId> detected,
                         const LabelSet& labels);

/// tp / (tp + fp); 0 when nothing was detected.
double Precision(const Confusion& c);
/// tp / (tp + fn); 0 when there are no positives.
double Recall(const Confusion& c);
/// Harmonic mean of precision and recall; 0 when both are 0.
double F1Score(const Confusion& c);

}  // namespace ensemfdet

#endif  // ENSEMFDET_EVAL_METRICS_H_
