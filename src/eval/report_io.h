// Persistence of detection outputs: vote tables and operating curves as
// CSV files, so deployments can hand results to downstream review tooling
// and notebooks without relinking against the library.
#ifndef ENSEMFDET_EVAL_REPORT_IO_H_
#define ENSEMFDET_EVAL_REPORT_IO_H_

#include <string>

#include "common/status.h"
#include "ensemble/ensemfdet.h"
#include "eval/curves.h"

namespace ensemfdet {

/// Writes `user_id,votes,weighted_votes` rows (only users with ≥ 1 vote;
/// header included) to `path`.
Status SaveVotesCsv(const EnsemFDetReport& report, const std::string& path);

/// Writes `control,num_detected,precision,recall,f1` rows to `path`.
Status SaveOperatingCurveCsv(std::span<const OperatingPoint> points,
                             const std::string& path);

/// Reads a votes CSV produced by SaveVotesCsv; returns (user id, votes,
/// weighted votes) triples in file order.
struct VoteRecord {
  UserId user = 0;
  int32_t votes = 0;
  double weighted_votes = 0.0;
};
Result<std::vector<VoteRecord>> LoadVotesCsv(const std::string& path);

}  // namespace ensemfdet

#endif  // ENSEMFDET_EVAL_REPORT_IO_H_
