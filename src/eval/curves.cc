#include "eval/curves.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace ensemfdet {

namespace {

OperatingPoint MakePoint(double control, std::span<const UserId> detected,
                         const LabelSet& labels) {
  const Confusion c = CountConfusion(detected, labels);
  OperatingPoint p;
  p.control = control;
  p.num_detected = c.num_detected();
  p.precision = Precision(c);
  p.recall = Recall(c);
  p.f1 = F1Score(c);
  return p;
}

}  // namespace

std::vector<OperatingPoint> VoteSweep(const VoteTable& votes,
                                      const LabelSet& labels,
                                      int32_t max_threshold) {
  ENSEMFDET_CHECK(votes.num_users() == labels.num_users())
      << "vote table and labels disagree on user universe";
  std::vector<OperatingPoint> points;
  int64_t last_detected = -1;
  for (int32_t t = max_threshold; t >= 1; --t) {
    std::vector<UserId> detected = votes.AcceptedUsers(t);
    if (static_cast<int64_t>(detected.size()) == last_detected) continue;
    last_detected = static_cast<int64_t>(detected.size());
    points.push_back(MakePoint(static_cast<double>(t), detected, labels));
  }
  return points;
}

std::vector<OperatingPoint> ScoreSweep(std::span<const double> scores,
                                       const LabelSet& labels,
                                       std::span<const int64_t> sizes) {
  ENSEMFDET_CHECK(static_cast<int64_t>(scores.size()) == labels.num_users());
  std::vector<UserId> ranked(scores.size());
  std::iota(ranked.begin(), ranked.end(), 0);
  std::sort(ranked.begin(), ranked.end(), [&scores](UserId a, UserId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });

  std::vector<OperatingPoint> points;
  for (int64_t size : sizes) {
    const int64_t take =
        std::clamp<int64_t>(size, 0, static_cast<int64_t>(ranked.size()));
    std::span<const UserId> prefix(ranked.data(),
                                   static_cast<size_t>(take));
    points.push_back(
        MakePoint(static_cast<double>(take), prefix, labels));
  }
  return points;
}

std::vector<OperatingPoint> BlockSweep(
    const std::vector<std::vector<UserId>>& user_blocks,
    const LabelSet& labels) {
  std::vector<OperatingPoint> points;
  std::vector<UserId> cumulative;
  for (size_t i = 0; i < user_blocks.size(); ++i) {
    cumulative.insert(cumulative.end(), user_blocks[i].begin(),
                      user_blocks[i].end());
    std::sort(cumulative.begin(), cumulative.end());
    cumulative.erase(std::unique(cumulative.begin(), cumulative.end()),
                     cumulative.end());
    points.push_back(
        MakePoint(static_cast<double>(i + 1), cumulative, labels));
  }
  return points;
}

double PrCurveArea(std::span<const OperatingPoint> points) {
  if (points.size() < 2) return 0.0;
  std::vector<OperatingPoint> sorted(points.begin(), points.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const OperatingPoint& a, const OperatingPoint& b) {
              return a.recall < b.recall;
            });
  double area = 0.0;
  for (size_t i = 1; i < sorted.size(); ++i) {
    const double dr = sorted[i].recall - sorted[i - 1].recall;
    area += dr * 0.5 * (sorted[i].precision + sorted[i - 1].precision);
  }
  return area;
}

std::vector<RocPoint> RocCurve(std::span<const double> scores,
                               const LabelSet& labels) {
  ENSEMFDET_CHECK(static_cast<int64_t>(scores.size()) == labels.num_users());
  std::vector<UserId> ranked(scores.size());
  std::iota(ranked.begin(), ranked.end(), 0);
  std::sort(ranked.begin(), ranked.end(), [&scores](UserId a, UserId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });

  const int64_t positives = labels.num_fraud();
  const int64_t negatives = labels.num_users() - positives;
  std::vector<RocPoint> points;
  points.push_back({std::numeric_limits<double>::infinity(), 0.0, 0.0});
  int64_t tp = 0, fp = 0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    labels.IsFraud(ranked[i]) ? ++tp : ++fp;
    // Emit one point per distinct score value: all ties must be included
    // together or the curve would depend on tie order.
    const bool last = i + 1 == ranked.size();
    if (!last && scores[ranked[i + 1]] == scores[ranked[i]]) continue;
    RocPoint p;
    p.threshold = scores[ranked[i]];
    p.true_positive_rate =
        positives == 0 ? 0.0
                       : static_cast<double>(tp) /
                             static_cast<double>(positives);
    p.false_positive_rate =
        negatives == 0 ? 0.0
                       : static_cast<double>(fp) /
                             static_cast<double>(negatives);
    points.push_back(p);
  }
  return points;
}

double RocAuc(std::span<const RocPoint> points) {
  if (points.size() < 2) return 0.0;
  std::vector<RocPoint> sorted(points.begin(), points.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const RocPoint& a, const RocPoint& b) {
              return a.false_positive_rate < b.false_positive_rate;
            });
  double area = 0.0;
  for (size_t i = 1; i < sorted.size(); ++i) {
    const double dx =
        sorted[i].false_positive_rate - sorted[i - 1].false_positive_rate;
    area += dx * 0.5 *
            (sorted[i].true_positive_rate + sorted[i - 1].true_positive_rate);
  }
  return area;
}

std::vector<int64_t> GeometricSizes(int64_t lo, int64_t hi, int n) {
  ENSEMFDET_CHECK(lo >= 1 && hi >= lo && n >= 1);
  std::vector<int64_t> sizes;
  const double ratio = static_cast<double>(hi) / static_cast<double>(lo);
  for (int i = 0; i < n; ++i) {
    const double frac = n == 1 ? 0.0 : static_cast<double>(i) / (n - 1);
    sizes.push_back(static_cast<int64_t>(
        std::llround(static_cast<double>(lo) * std::pow(ratio, frac))));
  }
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  return sizes;
}

}  // namespace ensemfdet
