// Ground-truth label storage: the "Blacklist" of dangerous PINs the paper
// evaluates against (§V-A). Evaluation is user-side only, matching the
// paper's metrics (fraud PINs, not merchants).
#ifndef ENSEMFDET_EVAL_LABELS_H_
#define ENSEMFDET_EVAL_LABELS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"

namespace ensemfdet {

class LabelSet {
 public:
  LabelSet() = default;
  /// All `num_users` users benign.
  explicit LabelSet(int64_t num_users);
  /// Marks `fraud_users` (parent ids) as fraudulent.
  LabelSet(int64_t num_users, std::span<const UserId> fraud_users);

  int64_t num_users() const { return static_cast<int64_t>(fraud_.size()); }
  int64_t num_fraud() const { return num_fraud_; }

  bool IsFraud(UserId u) const { return fraud_[u]; }

  void MarkFraud(UserId u);
  void ClearFraud(UserId u);

  /// Ascending list of fraud user ids.
  std::vector<UserId> FraudUsers() const;

 private:
  std::vector<bool> fraud_;
  int64_t num_fraud_ = 0;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_EVAL_LABELS_H_
