#include "eval/labels.h"

#include "common/logging.h"

namespace ensemfdet {

LabelSet::LabelSet(int64_t num_users)
    : fraud_(static_cast<size_t>(num_users), false) {}

LabelSet::LabelSet(int64_t num_users, std::span<const UserId> fraud_users)
    : LabelSet(num_users) {
  for (UserId u : fraud_users) MarkFraud(u);
}

void LabelSet::MarkFraud(UserId u) {
  ENSEMFDET_CHECK(u < fraud_.size()) << "user id out of range";
  if (!fraud_[u]) {
    fraud_[u] = true;
    ++num_fraud_;
  }
}

void LabelSet::ClearFraud(UserId u) {
  ENSEMFDET_CHECK(u < fraud_.size()) << "user id out of range";
  if (fraud_[u]) {
    fraud_[u] = false;
    --num_fraud_;
  }
}

std::vector<UserId> LabelSet::FraudUsers() const {
  std::vector<UserId> out;
  out.reserve(static_cast<size_t>(num_fraud_));
  for (size_t u = 0; u < fraud_.size(); ++u) {
    if (fraud_[u]) out.push_back(static_cast<UserId>(u));
  }
  return out;
}

}  // namespace ensemfdet
