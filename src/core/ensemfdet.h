// Umbrella header: the EnsemFDet library's public API in one include.
//
//   #include "core/ensemfdet.h"
//
//   using namespace ensemfdet;
//   Dataset data = GenerateJdPreset(JdPreset::kDataset1, 0.02, 7).ValueOrDie();
//   EnsemFDetConfig cfg;            // N = 80, S = 0.1, RES, auto-truncation
//   EnsemFDet detector(cfg);
//   auto report = detector.Run(data.graph, &DefaultThreadPool()).ValueOrDie();
//   auto suspicious = report.AcceptedUsers(/*threshold=*/8);
//
// Layering (see DESIGN.md): common → graph/linalg → sampling/detect/eval →
// ensemble/baselines/datagen → service. Including this header pulls in all
// of them; fine-grained includes remain available for users who want less.
#ifndef ENSEMFDET_CORE_ENSEMFDET_H_
#define ENSEMFDET_CORE_ENSEMFDET_H_

// Common runtime: Status/Result, RNG, thread pool, timing, table output.
#include "common/env.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table_writer.h"
#include "common/thread_pool.h"
#include "common/timer.h"

// Bipartite graph substrate.
#include "graph/bipartite_graph.h"
#include "graph/components.h"
#include "graph/csr_graph.h"
#include "graph/fingerprint.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "graph/kcore.h"
#include "graph/subgraph.h"

// Structural sampling (RES / ONS / TNS) and its theory.
#include "sampling/sampler.h"
#include "sampling/sampling_theory.h"

// Detection core: density score φ, greedy peeling (adjacency + in-place
// CSR), FDET.
#include "detect/csr_peeler.h"
#include "detect/density.h"
#include "detect/fdet.h"
#include "detect/greedy_peeler.h"
#include "detect/partitioned_fdet.h"

// The ENSEMFDET ensemble.
#include "ensemble/ensemfdet.h"
#include "ensemble/vote_table.h"

// Baselines.
#include "baselines/fbox.h"
#include "baselines/fraudar.h"
#include "baselines/hits.h"
#include "baselines/spoken.h"

// Evaluation.
#include "eval/curves.h"
#include "eval/labels.h"
#include "eval/metrics.h"
#include "eval/report_io.h"

// Synthetic data.
#include "datagen/generator.h"
#include "datagen/presets.h"
#include "datagen/transaction_stream.h"

// Incremental ingest: delta-versioned dynamic graphs + dirty-scoped
// streaming re-detection.
#include "ingest/dynamic_graph_store.h"
#include "ingest/graph_version.h"
#include "ingest/ingest_batch.h"
#include "ingest/streaming_detector.h"

// Streaming detection.
#include "stream/windowed_detector.h"

// Service layer: graph registry, async detection jobs, result cache.
#include "service/detection_service.h"
#include "service/graph_registry.h"
#include "service/result_cache.h"

#endif  // ENSEMFDET_CORE_ENSEMFDET_H_
