// DetectionService: the async job front-end that turns the EnsemFDet
// library into a servable engine.
//
// Callers Submit() detection requests against graphs published in a
// GraphRegistry and get back a JobId immediately; the work itself is
// scheduled onto a shared ThreadPool. Poll() is the non-blocking state
// probe, Wait() blocks until completion, Cancel() withdraws a job that has
// not started. One service instance multiplexes any number of concurrent
// clients.
//
// Contracts (see DESIGN.md §Service layer):
//
//  * Snapshot isolation — the graph is resolved to a GraphSnapshot at
//    Submit() time; re-publishing the name afterwards does not affect the
//    job.
//  * Backpressure — at most `Options::max_pending_jobs` jobs may be
//    queued+running; Submit() beyond that fails fast with
//    ResourceExhausted instead of queueing unboundedly.
//  * Memoization — EnsemFDet jobs are keyed by (graph fingerprint, config
//    hash) in a ResultCache; a repeat request over an unchanged graph
//    completes without recomputation and is flagged `cache_hit`.
//  * Determinism — results depend only on (snapshot, config): the
//    ensemble splits its RNG per member, so reports are bit-identical at
//    any pool width and any submission interleaving.
//  * No pool deadlock — jobs run *on* pool workers and fan out on the
//    same pool; ThreadPool::ParallelFor has the caller participate in its
//    own chunks, so a full pool still makes progress.
#ifndef ENSEMFDET_SERVICE_DETECTION_SERVICE_H_
#define ENSEMFDET_SERVICE_DETECTION_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "ensemble/ensemfdet.h"
#include "ingest/ingest_batch.h"
#include "ingest/streaming_detector.h"
#include "service/graph_registry.h"
#include "service/result_cache.h"
#include "storage/wal_writer.h"
#include "stream/windowed_detector.h"

namespace ensemfdet {

/// Which detection engine a job runs.
enum class DetectorKind {
  kEnsemFDet,  ///< the paper's ensemble (cacheable)
  kFraudar,    ///< FRAUDAR baseline
  kHits,       ///< HITS baseline
  kSpoken,     ///< SPOKEN baseline
  kFbox,       ///< FBOX baseline
};

/// Stable lower_snake name ("ensemfdet", "fraudar", ...).
const char* DetectorKindName(DetectorKind kind);

/// Inverse of DetectorKindName; NotFound for unknown names.
Result<DetectorKind> ParseDetectorKind(const std::string& name);

/// Replay a timestamped transaction log through a WindowedDetector
/// instead of detecting over a registry graph.
struct WindowedReplaySpec {
  WindowedDetectorConfig config;
  std::vector<Transaction> transactions;
  /// Also force a detection over the final window after the replay.
  bool final_detection = true;
};

struct JobRequest {
  /// Registry name of the graph to detect over (ignored for windowed
  /// replay jobs).
  std::string graph_name;
  DetectorKind detector = DetectorKind::kEnsemFDet;
  /// Per-job ensemble configuration (kEnsemFDet jobs).
  EnsemFDetConfig ensemble;
  /// Consult/populate the ResultCache (kEnsemFDet jobs only).
  bool use_cache = true;
  /// When set, the job is a windowed streaming replay; `detector` and
  /// `graph_name` are ignored (the spec embeds its own ensemble config).
  std::optional<WindowedReplaySpec> windowed;
};

using JobId = uint64_t;

// ---------------------------------------------------------------------------
// Streaming sessions: the incremental-ingest job kind. A session owns a
// WindowedDetector wired onto a DynamicGraphStore; clients push
// IngestBatches (async, per-session FIFO) and poll for the latest
// dirty-scoped detection report. Every fired detection's GraphVersion is
// registered in the GraphRegistry under `publish_name` (when set), so the
// live window stays queryable by ordinary batch jobs, and the aggregated
// report is inserted into the ResultCache keyed on
// (version content fingerprint, streaming-salted config hash) — content
// keys, independent of the base/delta split the store happened to be at.
// ---------------------------------------------------------------------------

using StreamId = uint64_t;

/// Durable-ingest options of a streaming session (DESIGN.md §"Durable
/// ingest"). When `dir` is set, every IngestBatch is appended to a
/// CRC-framed WAL (storage/wal_writer.h) and made durable per `fsync`
/// BEFORE IngestBatch returns OK — the OK is the ack, and an acked batch
/// survives a process kill (and, under kAlways, a power loss). A crashed
/// session is rebuilt by reopening with `recover = true`: the WAL suffix
/// after the resume checkpoint's embedded position is replayed through
/// the detector, reproducing bit-identical reports (detection randomness
/// is content-derived).
struct StreamWalOptions {
  /// WAL directory (.efw segments); empty = session is not WAL-backed.
  std::string dir;
  storage::WalFsyncPolicy fsync = storage::WalFsyncPolicy::kBatch;
  /// Group-commit interval under WalFsyncPolicy::kBatch.
  int64_t group_commit_records = 16;
  /// Segment rotation threshold in bytes.
  uint64_t segment_bytes = 4ull << 20;
  /// Replay the log through the detector before accepting new batches.
  /// With a `resume_checkpoint` set, the checkpoint must embed a WAL
  /// position (it was taken by SaveStreamCheckpoint on this WAL) and
  /// replay starts strictly after it; without one the whole log replays
  /// into a fresh detector. After OpenStream, StreamState::wal_last_seq
  /// says which batches are already applied — producers resend batches
  /// after it (WAL seq == 1-based batch number).
  bool recover = false;
};

struct StreamSessionConfig {
  /// Window/ensemble/reorder configuration of the session's detector.
  WindowedDetectorConfig detector;
  /// Registry name each detected GraphVersion is (re-)published under;
  /// empty = don't register.
  std::string publish_name;
  /// Insert each fired detection's report into the ResultCache.
  bool cache_reports = true;
  /// Backpressure: max batches queued (not yet applied) per session.
  int64_t max_queued_batches = 64;
  /// When set, the session resumes from a kStoreCheckpoint .efg snapshot
  /// (WindowedDetector::ResumeFromCheckpoint) instead of an empty window:
  /// window contents, detection clock, and reorder buffer pick up where
  /// the checkpointed session stood, and — because detection randomness
  /// is content-derived — subsequent reports are bit-identical to an
  /// uninterrupted session over the same stream. OpenStream fails with
  /// the reader's Status on a missing/corrupt/mismatched checkpoint.
  std::string resume_checkpoint;
  /// Durable ingest (see StreamWalOptions). With both `wal.recover` and
  /// `resume_checkpoint` set, the checkpoint restores the bulk of the
  /// state and the WAL replays only the suffix past it.
  StreamWalOptions wal;
};

/// Hash of everything that affects a streaming session's detection output
/// (the ensemble config, the dirty-scoping knobs) plus a streaming-mode
/// salt: streamed reports aggregate per-component ensembles, which is a
/// different (content-seeded) computation than batch EnsemFDet::Run, so
/// the two must never share ResultCache entries for the same graph.
uint64_t HashStreamingConfig(const WindowedDetectorConfig& config);

/// Snapshot of a session's progress (PollReport / WaitReport result).
struct StreamState {
  StreamId id = 0;
  /// Detections fired so far; the sequence number of `report`.
  uint64_t reports_generated = 0;
  int64_t events_ingested = 0;
  int64_t batches_pending = 0;  ///< queued or mid-apply
  bool closed = false;
  /// First error the session hit (sticky; later batches are dropped).
  Status error;

  /// Latest detection (nullptr before the first fired detection).
  std::shared_ptr<const EnsemFDetReport> report;
  uint64_t report_epoch = 0;
  uint64_t report_fingerprint = 0;
  /// Dirty-scoping diagnostics of the latest detection.
  StreamingDetectionStats report_stats;

  // Durable ingest (all zero for sessions without a WAL).
  /// Newest seq durably in the WAL. Right after a recovering OpenStream
  /// this is the resume point: batches 1..wal_last_seq are already
  /// applied, the producer resends from batch wal_last_seq + 1.
  uint64_t wal_last_seq = 0;
  /// Newest seq whose batch is fully applied to the detector.
  uint64_t wal_applied_seq = 0;
  /// Records replayed out of the WAL by a recovering OpenStream.
  uint64_t wal_records_recovered = 0;
};

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

/// "queued" / "running" / "done" / "failed" / "cancelled".
const char* JobStateName(JobState state);

/// What a completed job produced.
struct JobResult {
  JobId id = 0;
  DetectorKind detector = DetectorKind::kEnsemFDet;
  std::string graph_name;
  uint64_t graph_fingerprint = 0;
  uint64_t graph_version = 0;
  /// HashEnsemFDetConfig of the job's config (kEnsemFDet jobs).
  uint64_t config_hash = 0;
  /// True iff the report came out of the ResultCache.
  bool cache_hit = false;
  /// Wall-clock spent producing the result (≈0 on cache hits).
  double seconds = 0.0;

  /// Ensemble report (kEnsemFDet and windowed-replay jobs).
  std::shared_ptr<const EnsemFDetReport> report;
  /// Per-user suspiciousness (baseline jobs): hub scores for HITS, SVD
  /// scores for SPOKEN/FBOX, densest-containing-block φ for FRAUDAR.
  std::vector<double> user_scores;
  /// Number of boundary detections fired during a windowed replay.
  int64_t windowed_detections = 0;
};

/// Async detection front-end (see file comment for the four contracts).
///
/// @note Thread-safety: every public method is safe to call concurrently
///       from any number of client threads; internal state is guarded by
///       one mutex and job execution happens outside it. The referenced
///       GraphRegistry and ThreadPool must outlive the service.
class DetectionService {
 public:
  struct Options {
    /// Backpressure bound: max jobs queued+running at once (≥ 1).
    int64_t max_pending_jobs = 64;
    /// ResultCache capacity in reports.
    size_t cache_capacity = 128;
    /// Completed/failed/cancelled jobs retained for Poll/Wait before the
    /// oldest are forgotten (≥ 1).
    int64_t max_finished_jobs = 1024;
  };

  /// Neither `registry` nor `pool` is owned; both must outlive the
  /// service. Pass pool = nullptr to run jobs inline on Submit() (useful
  /// for single-threaded determinism tests).
  DetectionService(GraphRegistry* registry, ThreadPool* pool);
  DetectionService(GraphRegistry* registry, ThreadPool* pool,
                   Options options);
  /// Blocks until every in-flight job has drained.
  ~DetectionService();

  DetectionService(const DetectionService&) = delete;
  DetectionService& operator=(const DetectionService&) = delete;

  /// Validates and enqueues a job. Fails with ResourceExhausted when the
  /// pending bound is hit, NotFound when the graph is not published,
  /// InvalidArgument on a malformed request.
  ///
  /// @pre For non-windowed jobs, `request.graph_name` is published in the
  ///      registry at call time (the snapshot — graph, CSR form, and
  ///      fingerprint — is captured here; later re-publishes don't affect
  ///      the job).
  /// @post On OK, pending_jobs() was below max_pending_jobs and the job
  ///       is queued (or already finished, when pool == nullptr).
  Result<JobId> Submit(JobRequest request);

  /// Non-blocking state probe. NotFound for unknown/forgotten ids.
  Result<JobState> Poll(JobId id) const;

  /// Blocks until the job leaves the queue/running states. Returns the
  /// result for kDone, the job's failure Status for kFailed, and
  /// FailedPrecondition for kCancelled.
  ///
  /// @note May be called from any number of threads for the same id; all
  ///       waiters receive the same shared immutable JobResult.
  Result<std::shared_ptr<const JobResult>> Wait(JobId id);

  /// Withdraws a queued job. FailedPrecondition if it already started or
  /// finished; NotFound for unknown ids.
  ///
  /// @post On OK the job never runs and Wait(id) returns
  ///       FailedPrecondition. Running jobs are never preempted.
  Status Cancel(JobId id);

  /// Convenience: Submit + Wait.
  Result<std::shared_ptr<const JobResult>> Detect(JobRequest request);

  // --- Streaming sessions (see the StreamSessionConfig block comment).

  /// Validates the config and opens a session. InvalidArgument on bad
  /// window/interval/ensemble/backpressure parameters.
  Result<StreamId> OpenStream(StreamSessionConfig config);

  /// Enqueues a batch onto the session's FIFO and returns immediately
  /// (with pool == nullptr the batch is applied inline). Batches are
  /// applied in submission order by at most one worker at a time, so the
  /// underlying detector needs no locking of its own. Fails with
  /// ResourceExhausted when `max_queued_batches` is hit, NotFound for
  /// unknown streams, FailedPrecondition once closed, or the session's
  /// sticky error if it already failed.
  Status IngestBatch(StreamId id, ensemfdet::IngestBatch batch);

  /// Non-blocking snapshot of the session's progress and latest report.
  Result<StreamState> PollReport(StreamId id) const;

  /// Blocks until `reports_generated >= min_reports`, the queue fully
  /// drains after a CloseStream/FinishStream, or the session errors
  /// (sticky error returned as the state's `error`, not as this call's
  /// Status — the state up to the failure is still meaningful).
  Result<StreamState> WaitReport(StreamId id, uint64_t min_reports);

  /// Drains the queue, forces a final detection over the current window
  /// (reorder buffer flushed), registers/caches it like any fired
  /// detection, closes and removes the session, and returns the final
  /// state. The session id is invalid afterwards.
  Result<StreamState> FinishStream(StreamId id);

  /// Drains the queue and removes the session without a final detection.
  Status CloseStream(StreamId id);

  /// Drains the session's queue, then checkpoints its detector state
  /// (window + delta-log + detection clock + reorder buffer) to `path`
  /// as a kStoreCheckpoint .efg snapshot. The session stays open and
  /// usable; a later OpenStream with `resume_checkpoint = path` resumes
  /// it bit-exactly (see StreamSessionConfig). Blocks until the queue is
  /// idle; fails on closed/unknown streams or with the session's sticky
  /// error.
  Status SaveStreamCheckpoint(StreamId id, const std::string& path);

  /// Sessions currently open.
  int64_t open_streams() const;

  /// Jobs currently queued or running.
  int64_t pending_jobs() const;

  ResultCacheStats cache_stats() const { return cache_.stats(); }
  ResultCache& cache() { return cache_; }
  GraphRegistry& registry() { return *registry_; }
  const Options& options() const { return options_; }

 private:
  struct Job {
    JobId id = 0;
    JobRequest request;
    GraphSnapshot snapshot;  // resolved at Submit time
    JobState state = JobState::kQueued;
    Status error;            // set when state == kFailed
    std::shared_ptr<const JobResult> result;  // set when state == kDone
    int64_t submit_ns = -1;  // obs trace clock at Submit; -1 = not stamped
  };

  /// One streaming session. The service mutex guards every field except
  /// `detector`, which is touched only by the single active drainer (the
  /// `draining` flag arbitrates) — batches apply FIFO without holding the
  /// service lock during detection.
  struct QueuedBatch {
    ensemfdet::IngestBatch batch;
    int64_t enqueue_ns = -1;  // obs trace clock at IngestBatch; -1 = off
    uint64_t wal_seq = 0;     // this batch's WAL record (0 = no WAL)
  };

  struct StreamSession {
    StreamId id = 0;
    StreamSessionConfig config;
    uint64_t config_hash = 0;  // HashStreamingConfig(config.detector)
    WindowedDetector detector;
    std::deque<QueuedBatch> queue;
    bool draining = false;
    bool closed = false;
    Status error;  // sticky
    uint64_t reports = 0;
    int64_t events = 0;
    std::shared_ptr<const EnsemFDetReport> latest;
    uint64_t latest_epoch = 0;
    uint64_t latest_fingerprint = 0;
    StreamingDetectionStats latest_stats;

    /// Durable ingest. `wal_mu` is taken BEFORE the service mutex (never
    /// after) and held across validate → Append → enqueue, so WAL order
    /// is exactly queue (= apply) order; it also serializes truncation
    /// and close against appends. The writer is touched only under it.
    std::mutex wal_mu;
    std::optional<storage::WalWriter> wal;
    uint64_t wal_last_seq = 0;     // newest durable seq (guarded by mu_)
    uint64_t wal_applied_seq = 0;  // newest applied seq (guarded by mu_)
    uint64_t wal_recovered = 0;    // records replayed at open

    StreamSession(StreamSessionConfig cfg, ThreadPool* pool)
        : config(std::move(cfg)),
          config_hash(HashStreamingConfig(config.detector)),
          detector(config.detector, pool) {}
  };

  /// OpenStream's durable-ingest leg: recovers/creates the session's WAL
  /// (replaying the unapplied suffix through the detector when
  /// `wal.recover` is set) and installs the writer. The session is not
  /// yet visible to other threads.
  Status OpenSessionWal(const std::shared_ptr<StreamSession>& session);
  /// Applies queued batches for one session until its queue is empty;
  /// runs on a pool worker (or inline when pool == nullptr).
  void DrainStream(const std::shared_ptr<StreamSession>& session);
  /// Registers/caches one fired detection and publishes it as the
  /// session's latest report.
  void RecordStreamReport(const std::shared_ptr<StreamSession>& session,
                          EnsemFDetReport report);
  Result<std::shared_ptr<StreamSession>> FindStream(StreamId id) const;
  /// Locked helper: snapshot a session into a StreamState.
  StreamState StreamStateLocked(const StreamSession& session) const;
  /// Blocks until the session's queue is drained and no drainer runs.
  void WaitStreamIdle(std::unique_lock<std::mutex>* lock,
                      const std::shared_ptr<StreamSession>& session);

  /// Submit, returning the job handle itself (Detect waits on the handle
  /// directly so finished-job retention can never evict it mid-wait).
  Result<std::shared_ptr<Job>> SubmitJob(JobRequest request);
  /// Blocks until `job` reaches a terminal state and interprets it.
  Result<std::shared_ptr<const JobResult>> WaitOnJob(
      const std::shared_ptr<Job>& job);
  /// Executes one job on the calling thread (a pool worker, or the
  /// submitter when pool == nullptr).
  void RunJob(const std::shared_ptr<Job>& job);
  Result<JobResult> Execute(const Job& job);
  Result<JobResult> ExecuteEnsemble(const Job& job);
  Result<JobResult> ExecuteBaseline(const Job& job);
  Result<JobResult> ExecuteWindowedReplay(const Job& job);
  void FinishLocked(const std::shared_ptr<Job>& job, JobState state);

  GraphRegistry* const registry_;
  ThreadPool* const pool_;
  const Options options_;
  ResultCache cache_;

  mutable std::mutex mu_;
  std::condition_variable job_done_cv_;   // a job changed state
  std::condition_variable drained_cv_;    // task_in_flight_ hit zero
  JobId next_id_ = 1;
  int64_t pending_ = 0;         // queued + running
  int64_t tasks_in_flight_ = 0; // pool lambdas not yet returned
  bool shutting_down_ = false;
  std::unordered_map<JobId, std::shared_ptr<Job>> jobs_;
  std::deque<JobId> finished_order_;  // retention FIFO

  StreamId next_stream_id_ = 1;
  std::unordered_map<StreamId, std::shared_ptr<StreamSession>> streams_;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_SERVICE_DETECTION_SERVICE_H_
