#include "service/detection_service.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "baselines/fbox.h"
#include "baselines/fraudar.h"
#include "baselines/hits.h"
#include "baselines/spoken.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/timer.h"
#include "ingest/wal_codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/wal_reader.h"

namespace ensemfdet {

namespace {

// Service-layer instruments: per-job submit→start→finish latency split,
// backpressure rejections (job queue and stream queues share one
// counter), and per-session ingest lag (batch enqueue → drain pickup).
struct ServiceMetrics {
  obs::Counter* jobs_submitted_total;
  obs::Counter* jobs_done_total;
  obs::Counter* jobs_failed_total;
  obs::Counter* jobs_cancelled_total;
  obs::Counter* backpressure_rejections_total;
  obs::Counter* stream_batches_total;
  obs::Counter* stream_reports_total;
  obs::Gauge* open_streams;
  obs::Histogram* job_queue_wait_seconds;
  obs::Histogram* job_run_seconds;
  obs::Histogram* job_total_seconds;
  obs::Histogram* stream_ingest_lag_seconds;
};

ServiceMetrics& Metrics() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static ServiceMetrics m{
      reg.GetCounter("ensemfdet_service_jobs_submitted_total"),
      reg.GetCounter("ensemfdet_service_jobs_done_total"),
      reg.GetCounter("ensemfdet_service_jobs_failed_total"),
      reg.GetCounter("ensemfdet_service_jobs_cancelled_total"),
      reg.GetCounter("ensemfdet_service_backpressure_rejections_total"),
      reg.GetCounter("ensemfdet_service_stream_batches_total"),
      reg.GetCounter("ensemfdet_service_stream_reports_total"),
      reg.GetGauge("ensemfdet_service_open_streams"),
      reg.GetHistogram("ensemfdet_service_job_queue_wait_seconds"),
      reg.GetHistogram("ensemfdet_service_job_run_seconds"),
      reg.GetHistogram("ensemfdet_service_job_total_seconds"),
      reg.GetHistogram("ensemfdet_service_stream_ingest_lag_seconds"),
  };
  return m;
}

}  // namespace

const char* DetectorKindName(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kEnsemFDet:
      return "ensemfdet";
    case DetectorKind::kFraudar:
      return "fraudar";
    case DetectorKind::kHits:
      return "hits";
    case DetectorKind::kSpoken:
      return "spoken";
    case DetectorKind::kFbox:
      return "fbox";
  }
  return "unknown";
}

Result<DetectorKind> ParseDetectorKind(const std::string& name) {
  for (DetectorKind kind :
       {DetectorKind::kEnsemFDet, DetectorKind::kFraudar, DetectorKind::kHits,
        DetectorKind::kSpoken, DetectorKind::kFbox}) {
    if (name == DetectorKindName(kind)) return kind;
  }
  return Status::NotFound("unknown detector '" + name + "'");
}

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

DetectionService::DetectionService(GraphRegistry* registry, ThreadPool* pool)
    : DetectionService(registry, pool, Options()) {}

DetectionService::DetectionService(GraphRegistry* registry, ThreadPool* pool,
                                   Options options)
    : registry_(registry),
      pool_(pool),
      options_([&options] {
        options.max_pending_jobs = std::max<int64_t>(1, options.max_pending_jobs);
        options.max_finished_jobs =
            std::max<int64_t>(1, options.max_finished_jobs);
        return options;
      }()),
      cache_(options_.cache_capacity) {
  ENSEMFDET_CHECK(registry_ != nullptr) << "DetectionService needs a registry";
}

DetectionService::~DetectionService() {
  std::unique_lock<std::mutex> lock(mu_);
  shutting_down_ = true;
  drained_cv_.wait(lock, [this] { return tasks_in_flight_ == 0; });
}

namespace {

Status ValidateEnsembleConfig(const EnsemFDetConfig& config) {
  if (config.num_samples < 1) {
    return Status::InvalidArgument("ensemble num_samples must be >= 1");
  }
  if (!(config.ratio > 0.0) || config.ratio > 1.0) {
    return Status::InvalidArgument("ensemble ratio must be in (0, 1]");
  }
  return Status::OK();
}

}  // namespace

Result<JobId> DetectionService::Submit(JobRequest request) {
  ENSEMFDET_ASSIGN_OR_RETURN(std::shared_ptr<Job> job,
                             SubmitJob(std::move(request)));
  return job->id;
}

Result<std::shared_ptr<DetectionService::Job>> DetectionService::SubmitJob(
    JobRequest request) {
  // Validate and resolve the snapshot outside the service lock.
  GraphSnapshot snapshot;
  if (request.windowed.has_value()) {
    const WindowedReplaySpec& spec = *request.windowed;
    ENSEMFDET_RETURN_NOT_OK(ValidateEnsembleConfig(spec.config.ensemble));
    // Regressions within the detector's reorder slack are fine (the
    // WindowedDetector buffers them); anything worse would fail mid-job,
    // so reject it up front. The slack is measured against the running
    // maximum, exactly as the detector's watermark is.
    int64_t max_seen = std::numeric_limits<int64_t>::min();
    for (const Transaction& tx : spec.transactions) {
      if (max_seen != std::numeric_limits<int64_t>::min() &&
          tx.timestamp < max_seen - spec.config.max_out_of_order) {
        return Status::InvalidArgument(
            "windowed replay transactions regress beyond the "
            "max_out_of_order slack");
      }
      max_seen = std::max(max_seen, tx.timestamp);
    }
  } else {
    if (request.detector == DetectorKind::kEnsemFDet) {
      ENSEMFDET_RETURN_NOT_OK(ValidateEnsembleConfig(request.ensemble));
    }
    ENSEMFDET_ASSIGN_OR_RETURN(snapshot, registry_->Get(request.graph_name));
  }

  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->snapshot = std::move(snapshot);
  job->submit_ns = obs::MetricsRuntimeEnabled() ? obs::TraceNowNs() : -1;

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      return Status::FailedPrecondition("service is shutting down");
    }
    if (pending_ >= options_.max_pending_jobs) {
      Metrics().backpressure_rejections_total->Increment();
      return Status::ResourceExhausted(
          "detection queue full (" +
          std::to_string(options_.max_pending_jobs) +
          " jobs pending); retry later");
    }
    job->id = next_id_++;
    ++pending_;
    ++tasks_in_flight_;
    jobs_[job->id] = job;
  }
  Metrics().jobs_submitted_total->Increment();

  if (pool_ != nullptr) {
    pool_->Submit([this, job] { RunJob(job); });
  } else {
    RunJob(job);  // inline execution: Submit returns after completion
  }
  return job;
}

void DetectionService::RunJob(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (job->state == JobState::kCancelled) {
      // Cancel() already finalized the job; just retire the task.
      if (--tasks_in_flight_ == 0) drained_cv_.notify_all();
      return;
    }
    job->state = JobState::kRunning;
  }

  ServiceMetrics& metrics = Metrics();
  const int64_t start_ns =
      job->submit_ns >= 0 ? obs::TraceNowNs() : int64_t{-1};
  if (start_ns >= 0) {
    metrics.job_queue_wait_seconds->Record(start_ns - job->submit_ns);
  }

  // A throw out of Execute (e.g. rethrown from ParallelFor) must become a
  // failed job, not a lost task: the destructor waits on tasks_in_flight_.
  Result<JobResult> outcome = [&]() -> Result<JobResult> {
    try {
      // Fresh trace per job: service_job becomes the root every span of
      // this detection (including ensemble member fan-out on other
      // threads) parents back to — "why was this job slow?" is one
      // span tree in the flushed timeline.
      obs::ScopedTraceContext trace_root(obs::NewRootContext());
      obs::TraceSpan run_span(metrics.job_run_seconds, "service_job");
      return Execute(*job);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("detection job threw: ") +
                              e.what());
    } catch (...) {
      return Status::Internal("detection job threw a non-exception");
    }
  }();

  if (job->submit_ns >= 0) {
    metrics.job_total_seconds->Record(obs::TraceNowNs() - job->submit_ns);
  }
  (outcome.ok() ? metrics.jobs_done_total : metrics.jobs_failed_total)
      ->Increment();

  std::lock_guard<std::mutex> lock(mu_);
  if (outcome.ok()) {
    auto result = std::make_shared<JobResult>(std::move(outcome).value());
    result->id = job->id;
    job->result = std::move(result);
    FinishLocked(job, JobState::kDone);
  } else {
    job->error = outcome.status();
    FinishLocked(job, JobState::kFailed);
  }
  if (--tasks_in_flight_ == 0) drained_cv_.notify_all();
}

// Called with mu_ held; moves the job to a terminal state, applies the
// finished-job retention bound, and wakes waiters.
void DetectionService::FinishLocked(const std::shared_ptr<Job>& job,
                                    JobState state) {
  job->state = state;
  // Finished jobs only serve Poll/Wait (state/result/error): drop the
  // graph snapshot and request payload now, so retention doesn't pin
  // whole graphs or replay transaction logs in memory for up to
  // max_finished_jobs completions.
  job->snapshot.graph.reset();
  job->snapshot.csr.reset();
  job->request = JobRequest();
  --pending_;
  finished_order_.push_back(job->id);
  while (static_cast<int64_t>(finished_order_.size()) >
         options_.max_finished_jobs) {
    jobs_.erase(finished_order_.front());
    finished_order_.pop_front();
  }
  job_done_cv_.notify_all();
}

Result<JobResult> DetectionService::Execute(const Job& job) {
  if (job.request.windowed.has_value()) return ExecuteWindowedReplay(job);
  if (job.request.detector == DetectorKind::kEnsemFDet) {
    return ExecuteEnsemble(job);
  }
  return ExecuteBaseline(job);
}

Result<JobResult> DetectionService::ExecuteEnsemble(const Job& job) {
  JobResult result;
  result.detector = DetectorKind::kEnsemFDet;
  result.graph_name = job.snapshot.name;
  result.graph_fingerprint = job.snapshot.fingerprint;
  result.graph_version = job.snapshot.version;
  result.config_hash = HashEnsemFDetConfig(job.request.ensemble);

  if (job.request.use_cache) {
    if (auto cached =
            cache_.Lookup(result.graph_fingerprint, result.config_hash)) {
      result.cache_hit = true;
      result.report = std::move(cached);
      return result;
    }
  }

  WallTimer timer;
  EnsemFDet detector(job.request.ensemble);
  // Run the zero-materialization hot path on the snapshot's shared CSR
  // (built once at Publish) — no per-job re-conversion of the adjacency
  // graph.
  ENSEMFDET_CHECK(job.snapshot.csr != nullptr);
  ENSEMFDET_ASSIGN_OR_RETURN(EnsemFDetReport report,
                             detector.Run(*job.snapshot.csr, pool_));
  result.seconds = timer.ElapsedSeconds();
  auto shared = std::make_shared<const EnsemFDetReport>(std::move(report));
  if (job.request.use_cache) {
    cache_.Insert(result.graph_fingerprint, result.config_hash, shared);
  }
  result.report = std::move(shared);
  return result;
}

Result<JobResult> DetectionService::ExecuteBaseline(const Job& job) {
  JobResult result;
  result.detector = job.request.detector;
  result.graph_name = job.snapshot.name;
  result.graph_fingerprint = job.snapshot.fingerprint;
  result.graph_version = job.snapshot.version;

  const BipartiteGraph& graph = *job.snapshot.graph;
  WallTimer timer;
  switch (job.request.detector) {
    case DetectorKind::kFraudar: {
      // Peel the snapshot's shared CSR form directly (Publish always
      // materializes it alongside the adjacency graph).
      ENSEMFDET_CHECK(job.snapshot.csr != nullptr);
      ENSEMFDET_ASSIGN_OR_RETURN(
          FraudarResult fraudar,
          RunFraudar(*job.snapshot.csr, FraudarConfig{}));
      // Suspiciousness = φ of the densest detected block containing the
      // user (blocks are disjoint, so "densest" is "its" block).
      result.user_scores.assign(static_cast<size_t>(graph.num_users()), 0.0);
      for (const DetectedBlock& block : fraudar.blocks) {
        for (UserId u : block.users) {
          result.user_scores[u] = std::max(result.user_scores[u], block.score);
        }
      }
      break;
    }
    case DetectorKind::kHits: {
      ENSEMFDET_ASSIGN_OR_RETURN(HitsResult hits, RunHits(graph, {}));
      result.user_scores = std::move(hits.user_hub_scores);
      break;
    }
    case DetectorKind::kSpoken: {
      ENSEMFDET_ASSIGN_OR_RETURN(SpokenResult spoken, RunSpoken(graph, {}));
      result.user_scores = std::move(spoken.user_scores);
      break;
    }
    case DetectorKind::kFbox: {
      ENSEMFDET_ASSIGN_OR_RETURN(FboxResult fbox, RunFbox(graph, {}));
      result.user_scores = std::move(fbox.user_scores);
      break;
    }
    case DetectorKind::kEnsemFDet:
      return Status::Internal("ensemble job routed to ExecuteBaseline");
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

Result<JobResult> DetectionService::ExecuteWindowedReplay(const Job& job) {
  const WindowedReplaySpec& spec = *job.request.windowed;
  JobResult result;
  result.detector = DetectorKind::kEnsemFDet;
  result.config_hash = HashEnsemFDetConfig(spec.config.ensemble);

  WallTimer timer;
  WindowedDetector detector(spec.config, pool_);
  std::optional<EnsemFDetReport> last;
  for (const Transaction& tx : spec.transactions) {
    ENSEMFDET_ASSIGN_OR_RETURN(std::optional<EnsemFDetReport> fired,
                               detector.Ingest(tx));
    if (fired.has_value()) {
      ++result.windowed_detections;
      last = std::move(fired);
    }
  }
  if (spec.final_detection || !last.has_value()) {
    ENSEMFDET_ASSIGN_OR_RETURN(EnsemFDetReport final_report,
                               detector.DetectNow());
    last = std::move(final_report);
  }
  result.seconds = timer.ElapsedSeconds();
  result.report = std::make_shared<const EnsemFDetReport>(*std::move(last));
  return result;
}

Result<JobState> DetectionService::Poll(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job #" + std::to_string(id) +
                            " (unknown or past retention)");
  }
  return it->second->state;
}

Result<std::shared_ptr<const JobResult>> DetectionService::Wait(JobId id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return Status::NotFound("no job #" + std::to_string(id) +
                              " (unknown or past retention)");
    }
    job = it->second;
  }
  return WaitOnJob(job);
}

Result<std::shared_ptr<const JobResult>> DetectionService::WaitOnJob(
    const std::shared_ptr<Job>& job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    job_done_cv_.wait(lock, [&job] {
      return job->state != JobState::kQueued &&
             job->state != JobState::kRunning;
    });
  }
  // Terminal states are never mutated again, so reading outside mu_ is
  // safe once the wait observed one under the lock.
  switch (job->state) {
    case JobState::kDone:
      return job->result;
    case JobState::kFailed:
      return job->error;
    case JobState::kCancelled:
      return Status::FailedPrecondition("job #" + std::to_string(job->id) +
                                        " was cancelled");
    default:
      return Status::Internal("job in non-terminal state after wait");
  }
}

Status DetectionService::Cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job #" + std::to_string(id) +
                            " (unknown or past retention)");
  }
  const std::shared_ptr<Job>& job = it->second;
  if (job->state != JobState::kQueued) {
    return Status::FailedPrecondition(
        "job #" + std::to_string(id) + " is " + JobStateName(job->state) +
        "; only queued jobs can be cancelled");
  }
  FinishLocked(job, JobState::kCancelled);
  Metrics().jobs_cancelled_total->Increment();
  return Status::OK();
}

Result<std::shared_ptr<const JobResult>> DetectionService::Detect(
    JobRequest request) {
  // Wait on the handle, not the id: retention may forget the id before we
  // get to it, but it can never evict a Job we still hold.
  ENSEMFDET_ASSIGN_OR_RETURN(std::shared_ptr<Job> job,
                             SubmitJob(std::move(request)));
  return WaitOnJob(job);
}

int64_t DetectionService::pending_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

// ---------------------------------------------------------------------------
// Streaming sessions.
// ---------------------------------------------------------------------------

uint64_t HashStreamingConfig(const WindowedDetectorConfig& config) {
  // The ensemble hash covers method/N/S/reweight/seed and the full FDET
  // config; the streaming-mode salt keeps these keys disjoint from batch
  // EnsemFDet::Run entries over the same graph (different computation:
  // per-component content-seeded ensembles vs one global ensemble).
  uint64_t h = HashEnsemFDetConfig(config.ensemble);
  h = HashCombine(h, HashValue<uint64_t>(0x73747265616d6a62ull));  // salt
  h = HashCombine(h, HashValue(config.min_component_edges));
  return h;
}

Result<StreamId> DetectionService::OpenStream(StreamSessionConfig config) {
  const WindowedDetectorConfig& d = config.detector;
  if (d.num_users < 1 || d.num_merchants < 1) {
    return Status::InvalidArgument("stream universes must be non-empty");
  }
  if (d.window <= 0 || d.detection_interval <= 0) {
    return Status::InvalidArgument(
        "window and detection_interval must be positive");
  }
  if (d.max_out_of_order < 0) {
    return Status::InvalidArgument("max_out_of_order must be >= 0");
  }
  if (d.min_component_edges < 1) {
    return Status::InvalidArgument("min_component_edges must be >= 1");
  }
  if (d.component_cache_capacity < 1) {
    return Status::InvalidArgument("component_cache_capacity must be >= 1");
  }
  // The store knobs too: the detector constructs its DynamicGraphStore
  // lazily, and a bad value must be a synchronous InvalidArgument here,
  // not a sticky async session error on the first batch.
  if (!(d.compaction_factor > 0.0)) {
    return Status::InvalidArgument("compaction_factor must be positive");
  }
  if (d.min_compaction_delta < 1) {
    return Status::InvalidArgument("min_compaction_delta must be >= 1");
  }
  ENSEMFDET_RETURN_NOT_OK(ValidateEnsembleConfig(d.ensemble));
  if (config.max_queued_batches < 1) {
    return Status::InvalidArgument("max_queued_batches must be >= 1");
  }
  if (config.wal.dir.empty() && config.wal.recover) {
    return Status::InvalidArgument(
        "wal.recover requires a wal.dir to recover from");
  }
  if (!config.wal.dir.empty() && config.wal.group_commit_records < 1) {
    return Status::InvalidArgument("wal.group_commit_records must be >= 1");
  }

  auto session = std::make_shared<StreamSession>(std::move(config), pool_);
  if (!session->config.resume_checkpoint.empty()) {
    // Restore before the session is visible: a bad checkpoint fails the
    // open synchronously instead of poisoning the first batch.
    ENSEMFDET_RETURN_NOT_OK(session->detector.ResumeFromCheckpoint(
        session->config.resume_checkpoint));
  }
  if (!session->config.wal.dir.empty()) {
    ENSEMFDET_RETURN_NOT_OK(OpenSessionWal(session));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (shutting_down_) {
    return Status::FailedPrecondition("service is shutting down");
  }
  session->id = next_stream_id_++;
  streams_[session->id] = session;
  Metrics().open_streams->Add(1);
  return session->id;
}

Status DetectionService::OpenSessionWal(
    const std::shared_ptr<StreamSession>& session) {
  const StreamWalOptions& w = session->config.wal;
  storage::WalWriterOptions options;
  options.fsync = w.fsync;
  options.group_commit_records = w.group_commit_records;
  options.segment_bytes = w.segment_bytes;
  // Open first: this repairs a torn tail physically, so the replay below
  // sees exactly the records the writer will append after.
  ENSEMFDET_ASSIGN_OR_RETURN(storage::WalWriter writer,
                             storage::WalWriter::Open(w.dir, options));

  uint64_t after_seq = 0;
  if (w.recover) {
    if (!session->config.resume_checkpoint.empty()) {
      if (!session->detector.has_resumed_wal_position()) {
        return Status::InvalidArgument(
            "checkpoint " + session->config.resume_checkpoint +
            " carries no WAL position; it was not taken from a WAL-backed "
            "session, so recovery cannot tell where log replay resumes");
      }
      after_seq = session->detector.resumed_wal_position();
    }
    int64_t recovered_events = 0;
    Result<storage::WalReplayStats> replayed = storage::ReplayWal(
        w.dir, after_seq,
        [&](const storage::WalRecordView& record) -> Status {
          ENSEMFDET_ASSIGN_OR_RETURN(
              ensemfdet::IngestBatch batch,
              ingest::DecodeIngestBatch(record.payload));
          for (const Transaction& tx : batch.transactions) {
            ENSEMFDET_ASSIGN_OR_RETURN(
                std::optional<EnsemFDetReport> fired,
                session->detector.Ingest(tx));
            ++recovered_events;
            if (fired.has_value()) {
              // Re-fires exactly the detections the crashed run acked
              // after its checkpoint: registry/cache re-publication is
              // idempotent and the reports are bit-identical.
              RecordStreamReport(session, *std::move(fired));
            }
          }
          return Status::OK();
        });
    if (!replayed.ok() && replayed.status().code() == StatusCode::kIOError) {
      // A WAL that fails to replay is exactly the moment the black box
      // exists for: preserve the last-N spans (what recovery was doing)
      // before the error propagates.
      obs::DumpFlightRecorder(replayed.status().message().c_str());
    }
    ENSEMFDET_RETURN_NOT_OK(replayed.status());
    session->events += recovered_events;
    session->wal_recovered = replayed->records_replayed;
    session->wal_applied_seq = std::max(after_seq, replayed->last_seq);
  } else if (writer.last_seq() != 0) {
    return Status::FailedPrecondition(
        "WAL directory " + w.dir + " already holds records through seq " +
        std::to_string(writer.last_seq()) +
        "; open with wal.recover to resume it");
  }
  if (writer.next_seq() <= session->wal_applied_seq) {
    obs::DumpFlightRecorder("wal recovery: log ends before checkpoint seq");
    return Status::IOError(
        "WAL directory " + w.dir + " ends at seq " +
        std::to_string(writer.last_seq()) +
        " but the checkpoint reflects seq " +
        std::to_string(session->wal_applied_seq) +
        " — the log was deleted out from under its checkpoint");
  }
  session->wal_last_seq = writer.last_seq();
  session->wal.emplace(std::move(writer));
  return Status::OK();
}

Status DetectionService::SaveStreamCheckpoint(StreamId id,
                                              const std::string& path) {
  std::shared_ptr<StreamSession> session;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ENSEMFDET_ASSIGN_OR_RETURN(session, FindStream(id));
    if (session->closed) {
      return Status::FailedPrecondition("stream #" + std::to_string(id) +
                                        " is closed");
    }
    if (!session->error.ok()) return session->error;
    WaitStreamIdle(&lock, session);
    // Re-check after the wait: a concurrent CloseStream/FinishStream may
    // have closed (and removed) the session while the lock was released.
    if (session->closed) {
      return Status::FailedPrecondition("stream #" + std::to_string(id) +
                                        " is closed");
    }
    if (!session->error.ok()) return session->error;
    // Claim the detector so no drainer can mutate it while the
    // checkpoint is written (file IO must not run under the mutex).
    session->draining = true;
  }
  // wal_applied_seq is stable while the detector is claimed (only the
  // drainer advances it, and none can run): the position embedded in the
  // checkpoint is exactly the state being written.
  const Status saved = [&]() -> Status {
    if (!session->wal.has_value()) {
      return session->detector.SaveCheckpoint(path);
    }
    storage::WalPositionRecord position;
    {
      std::lock_guard<std::mutex> lock(mu_);
      position.last_applied_seq = session->wal_applied_seq;
    }
    // Order is the crash-safety invariant (pinned by the lockstep test in
    // tests/storage_checkpoint_test.cc): the checkpoint must be durably
    // on disk BEFORE any segment it covers is removed, or a crash between
    // the two loses acked records.
    ENSEMFDET_RETURN_NOT_OK(
        session->detector.SaveCheckpoint(path, &position));
    std::lock_guard<std::mutex> wal_lock(session->wal_mu);
    return session->wal->TruncateThrough(position.last_applied_seq);
  }();
  bool restart_drain = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Batches that queued while the detector was claimed found
    // `draining` set and did not start a drainer — restart one here.
    if (session->queue.empty()) {
      session->draining = false;
    } else {
      restart_drain = true;
      ++tasks_in_flight_;
    }
    job_done_cv_.notify_all();
  }
  if (restart_drain) {
    if (pool_ != nullptr) {
      pool_->Submit([this, session] { DrainStream(session); });
    } else {
      DrainStream(session);
    }
  }
  return saved;
}

Result<std::shared_ptr<DetectionService::StreamSession>>
DetectionService::FindStream(StreamId id) const {
  auto it = streams_.find(id);
  if (it == streams_.end()) {
    return Status::NotFound("no stream #" + std::to_string(id));
  }
  return it->second;
}

Status DetectionService::IngestBatch(StreamId id,
                                     ensemfdet::IngestBatch batch) {
  std::shared_ptr<StreamSession> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      return Status::FailedPrecondition("service is shutting down");
    }
    ENSEMFDET_ASSIGN_OR_RETURN(session, FindStream(id));
  }

  // WAL-backed sessions serialize producers on wal_mu (taken before mu_,
  // never after), held across validate → Append → enqueue: WAL order is
  // exactly queue order, so replay order is apply order. The append (file
  // IO) runs outside mu_; the capacity check below stays valid across the
  // gap because every other producer of this session also needs wal_mu,
  // and the drainer only shrinks the queue.
  const bool durable = session->wal.has_value();
  std::unique_lock<std::mutex> wal_lock;
  if (durable) wal_lock = std::unique_lock<std::mutex>(session->wal_mu);

  bool start_drain = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (session->closed) {
      return Status::FailedPrecondition("stream #" + std::to_string(id) +
                                        " is closed");
    }
    if (!session->error.ok()) return session->error;
    if (static_cast<int64_t>(session->queue.size()) >=
        session->config.max_queued_batches) {
      Metrics().backpressure_rejections_total->Increment();
      return Status::ResourceExhausted(
          "stream #" + std::to_string(id) + " queue full (" +
          std::to_string(session->config.max_queued_batches) +
          " batches pending); retry later");
    }
    if (!durable) {
      session->queue.push_back(QueuedBatch{
          std::move(batch),
          obs::MetricsRuntimeEnabled() ? obs::TraceNowNs() : int64_t{-1},
          /*wal_seq=*/0});
      Metrics().stream_batches_total->Increment();
      if (!session->draining) {
        session->draining = true;
        start_drain = true;
        ++tasks_in_flight_;
      }
    }
  }

  if (durable) {
    // Durability before the ack AND before the batch becomes applicable:
    // returning OK is the ack, and the fsync policy has run inside
    // Append. On failure nothing was enqueued — the producer must not
    // treat the batch as taken — and the error is sticky (the log tail
    // state is unknown, so later appends could interleave with a retry).
    const std::vector<std::byte> payload =
        ingest::EncodeIngestBatch(batch);
    Result<uint64_t> seq =
        session->wal->Append(payload.data(), payload.size(),
                             ingest::WalRecordTimestamp(batch));
    std::lock_guard<std::mutex> lock(mu_);
    if (!seq.ok()) {
      if (session->error.ok()) session->error = seq.status();
      job_done_cv_.notify_all();
      return seq.status();
    }
    if (session->closed) {
      // Closed while appending. The record is durable; a recovery will
      // apply it, and wal_last_seq-based resend skips it — consistent
      // either way. This session, though, will never apply it.
      return Status::FailedPrecondition("stream #" + std::to_string(id) +
                                        " is closed");
    }
    session->wal_last_seq = *seq;
    session->queue.push_back(QueuedBatch{
        std::move(batch),
        obs::MetricsRuntimeEnabled() ? obs::TraceNowNs() : int64_t{-1},
        *seq});
    Metrics().stream_batches_total->Increment();
    if (!session->draining) {
      session->draining = true;
      start_drain = true;
      ++tasks_in_flight_;
    }
  }

  if (durable) wal_lock.unlock();
  if (start_drain) {
    if (pool_ != nullptr) {
      pool_->Submit([this, session] { DrainStream(session); });
    } else {
      DrainStream(session);  // inline: returns once the queue is empty
    }
  }
  return Status::OK();
}

void DetectionService::DrainStream(
    const std::shared_ptr<StreamSession>& session) {
  while (true) {
    ensemfdet::IngestBatch batch;
    int64_t enqueue_ns = -1;
    uint64_t wal_seq = 0;
    bool failed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (session->queue.empty()) {
        session->draining = false;
        job_done_cv_.notify_all();
        if (--tasks_in_flight_ == 0) drained_cv_.notify_all();
        return;
      }
      batch = std::move(session->queue.front().batch);
      enqueue_ns = session->queue.front().enqueue_ns;
      wal_seq = session->queue.front().wal_seq;
      session->queue.pop_front();
      failed = !session->error.ok();
    }
    if (failed) continue;  // sticky error: drop the remaining batches
    if (enqueue_ns >= 0) {
      Metrics().stream_ingest_lag_seconds->Record(obs::TraceNowNs() -
                                                  enqueue_ns);
    }

    int64_t applied = 0;
    Status error;
    for (const Transaction& tx : batch.transactions) {
      // A throw out of detection must become a session error, not a lost
      // drain task (the destructor waits on tasks_in_flight_).
      Result<std::optional<EnsemFDetReport>> fired =
          [&]() -> Result<std::optional<EnsemFDetReport>> {
        try {
          return session->detector.Ingest(tx);
        } catch (const std::exception& e) {
          return Status::Internal(std::string("stream ingest threw: ") +
                                  e.what());
        } catch (...) {
          return Status::Internal("stream ingest threw a non-exception");
        }
      }();
      if (!fired.ok()) {
        error = fired.status();
        break;
      }
      ++applied;
      if (fired->has_value()) {
        RecordStreamReport(session, *std::move(*fired));
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    session->events += applied;
    // The WAL position only advances past fully applied batches: a batch
    // that errored mid-way must be re-replayed (deterministically failing
    // again) rather than silently half-skipped by the next checkpoint.
    if (error.ok() && wal_seq > session->wal_applied_seq) {
      session->wal_applied_seq = wal_seq;
    }
    if (!error.ok() && session->error.ok()) session->error = error;
    if (!error.ok()) job_done_cv_.notify_all();
  }
}

void DetectionService::RecordStreamReport(
    const std::shared_ptr<StreamSession>& session, EnsemFDetReport report) {
  auto shared = std::make_shared<const EnsemFDetReport>(std::move(report));
  // The drainer has exclusive detector access; last_version/last_stats are
  // the detection that produced `report`.
  const std::optional<GraphVersion>& version =
      session->detector.last_version();
  const std::optional<StreamingDetectionStats>& stats =
      session->detector.last_stats();
  ENSEMFDET_CHECK(version.has_value() && stats.has_value());
  const uint64_t fingerprint = version->ContentFingerprint();

  if (!session->config.publish_name.empty()) {
    Result<GraphSnapshot> published =
        registry_->PublishVersion(session->config.publish_name, *version);
    if (!published.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (session->error.ok()) session->error = published.status();
      job_done_cv_.notify_all();
      return;
    }
  }
  if (session->config.cache_reports) {
    cache_.Insert(fingerprint, session->config_hash, shared);
  }

  Metrics().stream_reports_total->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  session->latest = std::move(shared);
  ++session->reports;
  session->latest_epoch = version->epoch();
  session->latest_fingerprint = fingerprint;
  session->latest_stats = *stats;
  job_done_cv_.notify_all();
}

// Called with mu_ held.
StreamState DetectionService::StreamStateLocked(
    const StreamSession& session) const {
  StreamState state;
  state.id = session.id;
  state.reports_generated = session.reports;
  state.events_ingested = session.events;
  state.batches_pending = static_cast<int64_t>(session.queue.size()) +
                          (session.draining ? 1 : 0);
  state.closed = session.closed;
  state.error = session.error;
  state.report = session.latest;
  state.report_epoch = session.latest_epoch;
  state.report_fingerprint = session.latest_fingerprint;
  state.report_stats = session.latest_stats;
  state.wal_last_seq = session.wal_last_seq;
  state.wal_applied_seq = session.wal_applied_seq;
  state.wal_records_recovered = session.wal_recovered;
  return state;
}

Result<StreamState> DetectionService::PollReport(StreamId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  ENSEMFDET_ASSIGN_OR_RETURN(std::shared_ptr<StreamSession> session,
                             FindStream(id));
  return StreamStateLocked(*session);
}

Result<StreamState> DetectionService::WaitReport(StreamId id,
                                                 uint64_t min_reports) {
  std::unique_lock<std::mutex> lock(mu_);
  ENSEMFDET_ASSIGN_OR_RETURN(std::shared_ptr<StreamSession> session,
                             FindStream(id));
  job_done_cv_.wait(lock, [&] {
    return session->reports >= min_reports || !session->error.ok() ||
           (session->closed && session->queue.empty() &&
            !session->draining);
  });
  return StreamStateLocked(*session);
}

// Called with mu_ held (released while waiting).
void DetectionService::WaitStreamIdle(
    std::unique_lock<std::mutex>* lock,
    const std::shared_ptr<StreamSession>& session) {
  job_done_cv_.wait(*lock, [&] {
    return session->queue.empty() && !session->draining;
  });
}

Result<StreamState> DetectionService::FinishStream(StreamId id) {
  std::shared_ptr<StreamSession> session;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ENSEMFDET_ASSIGN_OR_RETURN(session, FindStream(id));
    if (session->closed) {
      return Status::FailedPrecondition("stream #" + std::to_string(id) +
                                        " is closed");
    }
    session->closed = true;  // no new batches
    WaitStreamIdle(&lock, session);
    // Claim the detector for the final detection (nothing else can start
    // a drainer now: the queue is empty and the session is closed).
    session->draining = true;
  }

  Status final_error;
  if (session->error.ok()) {
    Result<EnsemFDetReport> final_report = session->detector.DetectNow();
    if (final_report.ok()) {
      RecordStreamReport(session, *std::move(final_report));
    } else {
      final_error = final_report.status();
    }
  }
  if (session->wal.has_value()) {
    // Final group-commit sync + close; a failure here means the tail may
    // not be durable and must surface to the caller.
    std::lock_guard<std::mutex> wal_lock(session->wal_mu);
    Status wal_closed = session->wal->Close();
    if (!wal_closed.ok() && final_error.ok()) final_error = wal_closed;
  }

  std::lock_guard<std::mutex> lock(mu_);
  session->draining = false;
  if (!final_error.ok() && session->error.ok()) {
    session->error = final_error;
  }
  StreamState state = StreamStateLocked(*session);
  streams_.erase(id);
  Metrics().open_streams->Add(-1);
  job_done_cv_.notify_all();
  return state;
}

Status DetectionService::CloseStream(StreamId id) {
  std::unique_lock<std::mutex> lock(mu_);
  ENSEMFDET_ASSIGN_OR_RETURN(std::shared_ptr<StreamSession> session,
                             FindStream(id));
  session->closed = true;
  WaitStreamIdle(&lock, session);
  streams_.erase(id);
  Metrics().open_streams->Add(-1);
  job_done_cv_.notify_all();
  return Status::OK();
}

int64_t DetectionService::open_streams() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(streams_.size());
}

}  // namespace ensemfdet
