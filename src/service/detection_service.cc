#include "service/detection_service.h"

#include <algorithm>
#include <utility>

#include "baselines/fbox.h"
#include "baselines/fraudar.h"
#include "baselines/hits.h"
#include "baselines/spoken.h"
#include "common/logging.h"
#include "common/timer.h"

namespace ensemfdet {

const char* DetectorKindName(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kEnsemFDet:
      return "ensemfdet";
    case DetectorKind::kFraudar:
      return "fraudar";
    case DetectorKind::kHits:
      return "hits";
    case DetectorKind::kSpoken:
      return "spoken";
    case DetectorKind::kFbox:
      return "fbox";
  }
  return "unknown";
}

Result<DetectorKind> ParseDetectorKind(const std::string& name) {
  for (DetectorKind kind :
       {DetectorKind::kEnsemFDet, DetectorKind::kFraudar, DetectorKind::kHits,
        DetectorKind::kSpoken, DetectorKind::kFbox}) {
    if (name == DetectorKindName(kind)) return kind;
  }
  return Status::NotFound("unknown detector '" + name + "'");
}

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

DetectionService::DetectionService(GraphRegistry* registry, ThreadPool* pool)
    : DetectionService(registry, pool, Options()) {}

DetectionService::DetectionService(GraphRegistry* registry, ThreadPool* pool,
                                   Options options)
    : registry_(registry),
      pool_(pool),
      options_([&options] {
        options.max_pending_jobs = std::max<int64_t>(1, options.max_pending_jobs);
        options.max_finished_jobs =
            std::max<int64_t>(1, options.max_finished_jobs);
        return options;
      }()),
      cache_(options_.cache_capacity) {
  ENSEMFDET_CHECK(registry_ != nullptr) << "DetectionService needs a registry";
}

DetectionService::~DetectionService() {
  std::unique_lock<std::mutex> lock(mu_);
  shutting_down_ = true;
  drained_cv_.wait(lock, [this] { return tasks_in_flight_ == 0; });
}

namespace {

Status ValidateEnsembleConfig(const EnsemFDetConfig& config) {
  if (config.num_samples < 1) {
    return Status::InvalidArgument("ensemble num_samples must be >= 1");
  }
  if (!(config.ratio > 0.0) || config.ratio > 1.0) {
    return Status::InvalidArgument("ensemble ratio must be in (0, 1]");
  }
  return Status::OK();
}

}  // namespace

Result<JobId> DetectionService::Submit(JobRequest request) {
  ENSEMFDET_ASSIGN_OR_RETURN(std::shared_ptr<Job> job,
                             SubmitJob(std::move(request)));
  return job->id;
}

Result<std::shared_ptr<DetectionService::Job>> DetectionService::SubmitJob(
    JobRequest request) {
  // Validate and resolve the snapshot outside the service lock.
  GraphSnapshot snapshot;
  if (request.windowed.has_value()) {
    const WindowedReplaySpec& spec = *request.windowed;
    ENSEMFDET_RETURN_NOT_OK(ValidateEnsembleConfig(spec.config.ensemble));
    for (size_t i = 1; i < spec.transactions.size(); ++i) {
      if (spec.transactions[i].timestamp <
          spec.transactions[i - 1].timestamp) {
        return Status::InvalidArgument(
            "windowed replay transactions must be non-decreasing in time");
      }
    }
  } else {
    if (request.detector == DetectorKind::kEnsemFDet) {
      ENSEMFDET_RETURN_NOT_OK(ValidateEnsembleConfig(request.ensemble));
    }
    ENSEMFDET_ASSIGN_OR_RETURN(snapshot, registry_->Get(request.graph_name));
  }

  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->snapshot = std::move(snapshot);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      return Status::FailedPrecondition("service is shutting down");
    }
    if (pending_ >= options_.max_pending_jobs) {
      return Status::ResourceExhausted(
          "detection queue full (" +
          std::to_string(options_.max_pending_jobs) +
          " jobs pending); retry later");
    }
    job->id = next_id_++;
    ++pending_;
    ++tasks_in_flight_;
    jobs_[job->id] = job;
  }

  if (pool_ != nullptr) {
    pool_->Submit([this, job] { RunJob(job); });
  } else {
    RunJob(job);  // inline execution: Submit returns after completion
  }
  return job;
}

void DetectionService::RunJob(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (job->state == JobState::kCancelled) {
      // Cancel() already finalized the job; just retire the task.
      if (--tasks_in_flight_ == 0) drained_cv_.notify_all();
      return;
    }
    job->state = JobState::kRunning;
  }

  // A throw out of Execute (e.g. rethrown from ParallelFor) must become a
  // failed job, not a lost task: the destructor waits on tasks_in_flight_.
  Result<JobResult> outcome = [&]() -> Result<JobResult> {
    try {
      return Execute(*job);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("detection job threw: ") +
                              e.what());
    } catch (...) {
      return Status::Internal("detection job threw a non-exception");
    }
  }();

  std::lock_guard<std::mutex> lock(mu_);
  if (outcome.ok()) {
    auto result = std::make_shared<JobResult>(std::move(outcome).value());
    result->id = job->id;
    job->result = std::move(result);
    FinishLocked(job, JobState::kDone);
  } else {
    job->error = outcome.status();
    FinishLocked(job, JobState::kFailed);
  }
  if (--tasks_in_flight_ == 0) drained_cv_.notify_all();
}

// Called with mu_ held; moves the job to a terminal state, applies the
// finished-job retention bound, and wakes waiters.
void DetectionService::FinishLocked(const std::shared_ptr<Job>& job,
                                    JobState state) {
  job->state = state;
  // Finished jobs only serve Poll/Wait (state/result/error): drop the
  // graph snapshot and request payload now, so retention doesn't pin
  // whole graphs or replay transaction logs in memory for up to
  // max_finished_jobs completions.
  job->snapshot.graph.reset();
  job->snapshot.csr.reset();
  job->request = JobRequest();
  --pending_;
  finished_order_.push_back(job->id);
  while (static_cast<int64_t>(finished_order_.size()) >
         options_.max_finished_jobs) {
    jobs_.erase(finished_order_.front());
    finished_order_.pop_front();
  }
  job_done_cv_.notify_all();
}

Result<JobResult> DetectionService::Execute(const Job& job) {
  if (job.request.windowed.has_value()) return ExecuteWindowedReplay(job);
  if (job.request.detector == DetectorKind::kEnsemFDet) {
    return ExecuteEnsemble(job);
  }
  return ExecuteBaseline(job);
}

Result<JobResult> DetectionService::ExecuteEnsemble(const Job& job) {
  JobResult result;
  result.detector = DetectorKind::kEnsemFDet;
  result.graph_name = job.snapshot.name;
  result.graph_fingerprint = job.snapshot.fingerprint;
  result.graph_version = job.snapshot.version;
  result.config_hash = HashEnsemFDetConfig(job.request.ensemble);

  if (job.request.use_cache) {
    if (auto cached =
            cache_.Lookup(result.graph_fingerprint, result.config_hash)) {
      result.cache_hit = true;
      result.report = std::move(cached);
      return result;
    }
  }

  WallTimer timer;
  EnsemFDet detector(job.request.ensemble);
  // Run the zero-materialization hot path on the snapshot's shared CSR
  // (built once at Publish) — no per-job re-conversion of the adjacency
  // graph.
  ENSEMFDET_CHECK(job.snapshot.csr != nullptr);
  ENSEMFDET_ASSIGN_OR_RETURN(EnsemFDetReport report,
                             detector.Run(*job.snapshot.csr, pool_));
  result.seconds = timer.ElapsedSeconds();
  auto shared = std::make_shared<const EnsemFDetReport>(std::move(report));
  if (job.request.use_cache) {
    cache_.Insert(result.graph_fingerprint, result.config_hash, shared);
  }
  result.report = std::move(shared);
  return result;
}

Result<JobResult> DetectionService::ExecuteBaseline(const Job& job) {
  JobResult result;
  result.detector = job.request.detector;
  result.graph_name = job.snapshot.name;
  result.graph_fingerprint = job.snapshot.fingerprint;
  result.graph_version = job.snapshot.version;

  const BipartiteGraph& graph = *job.snapshot.graph;
  WallTimer timer;
  switch (job.request.detector) {
    case DetectorKind::kFraudar: {
      // Peel the snapshot's shared CSR form directly (Publish always
      // materializes it alongside the adjacency graph).
      ENSEMFDET_CHECK(job.snapshot.csr != nullptr);
      ENSEMFDET_ASSIGN_OR_RETURN(
          FraudarResult fraudar,
          RunFraudar(*job.snapshot.csr, FraudarConfig{}));
      // Suspiciousness = φ of the densest detected block containing the
      // user (blocks are disjoint, so "densest" is "its" block).
      result.user_scores.assign(static_cast<size_t>(graph.num_users()), 0.0);
      for (const DetectedBlock& block : fraudar.blocks) {
        for (UserId u : block.users) {
          result.user_scores[u] = std::max(result.user_scores[u], block.score);
        }
      }
      break;
    }
    case DetectorKind::kHits: {
      ENSEMFDET_ASSIGN_OR_RETURN(HitsResult hits, RunHits(graph, {}));
      result.user_scores = std::move(hits.user_hub_scores);
      break;
    }
    case DetectorKind::kSpoken: {
      ENSEMFDET_ASSIGN_OR_RETURN(SpokenResult spoken, RunSpoken(graph, {}));
      result.user_scores = std::move(spoken.user_scores);
      break;
    }
    case DetectorKind::kFbox: {
      ENSEMFDET_ASSIGN_OR_RETURN(FboxResult fbox, RunFbox(graph, {}));
      result.user_scores = std::move(fbox.user_scores);
      break;
    }
    case DetectorKind::kEnsemFDet:
      return Status::Internal("ensemble job routed to ExecuteBaseline");
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

Result<JobResult> DetectionService::ExecuteWindowedReplay(const Job& job) {
  const WindowedReplaySpec& spec = *job.request.windowed;
  JobResult result;
  result.detector = DetectorKind::kEnsemFDet;
  result.config_hash = HashEnsemFDetConfig(spec.config.ensemble);

  WallTimer timer;
  WindowedDetector detector(spec.config, pool_);
  std::optional<EnsemFDetReport> last;
  for (const Transaction& tx : spec.transactions) {
    ENSEMFDET_ASSIGN_OR_RETURN(std::optional<EnsemFDetReport> fired,
                               detector.Ingest(tx));
    if (fired.has_value()) {
      ++result.windowed_detections;
      last = std::move(fired);
    }
  }
  if (spec.final_detection || !last.has_value()) {
    ENSEMFDET_ASSIGN_OR_RETURN(EnsemFDetReport final_report,
                               detector.DetectNow());
    last = std::move(final_report);
  }
  result.seconds = timer.ElapsedSeconds();
  result.report = std::make_shared<const EnsemFDetReport>(*std::move(last));
  return result;
}

Result<JobState> DetectionService::Poll(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job #" + std::to_string(id) +
                            " (unknown or past retention)");
  }
  return it->second->state;
}

Result<std::shared_ptr<const JobResult>> DetectionService::Wait(JobId id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return Status::NotFound("no job #" + std::to_string(id) +
                              " (unknown or past retention)");
    }
    job = it->second;
  }
  return WaitOnJob(job);
}

Result<std::shared_ptr<const JobResult>> DetectionService::WaitOnJob(
    const std::shared_ptr<Job>& job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    job_done_cv_.wait(lock, [&job] {
      return job->state != JobState::kQueued &&
             job->state != JobState::kRunning;
    });
  }
  // Terminal states are never mutated again, so reading outside mu_ is
  // safe once the wait observed one under the lock.
  switch (job->state) {
    case JobState::kDone:
      return job->result;
    case JobState::kFailed:
      return job->error;
    case JobState::kCancelled:
      return Status::FailedPrecondition("job #" + std::to_string(job->id) +
                                        " was cancelled");
    default:
      return Status::Internal("job in non-terminal state after wait");
  }
}

Status DetectionService::Cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job #" + std::to_string(id) +
                            " (unknown or past retention)");
  }
  const std::shared_ptr<Job>& job = it->second;
  if (job->state != JobState::kQueued) {
    return Status::FailedPrecondition(
        "job #" + std::to_string(id) + " is " + JobStateName(job->state) +
        "; only queued jobs can be cancelled");
  }
  FinishLocked(job, JobState::kCancelled);
  return Status::OK();
}

Result<std::shared_ptr<const JobResult>> DetectionService::Detect(
    JobRequest request) {
  // Wait on the handle, not the id: retention may forget the id before we
  // get to it, but it can never evict a Job we still hold.
  ENSEMFDET_ASSIGN_OR_RETURN(std::shared_ptr<Job> job,
                             SubmitJob(std::move(request)));
  return WaitOnJob(job);
}

int64_t DetectionService::pending_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

}  // namespace ensemfdet
