// GraphRegistry: a thread-safe catalog of named, immutable BipartiteGraph
// snapshots — the service layer's source of truth for "which graph does
// this request mean".
//
// Publishing a graph under an existing name atomically replaces the entry
// (version bumps, fingerprint recomputes); readers holding the previous
// snapshot keep a valid shared_ptr, so in-flight detection jobs are
// isolated from concurrent re-publishes (snapshot isolation). Fingerprints
// are stable content hashes (common/hash.h) over node counts, edge
// endpoints, and weights, and key the service's ResultCache.
#ifndef ENSEMFDET_SERVICE_GRAPH_REGISTRY_H_
#define ENSEMFDET_SERVICE_GRAPH_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"
#include "graph/csr_graph.h"
// FingerprintGraph historically lived here; it moved to the graph layer so
// the ingest subsystem can stamp GraphVersions without a service
// dependency. The include keeps every existing `FingerprintGraph` call
// site through this header compiling unchanged.
#include "graph/fingerprint.h"
#include "ingest/graph_version.h"

namespace ensemfdet {

/// One published graph: shared, immutable, fingerprinted. Both
/// representations are materialized at Publish() time so every job over
/// the snapshot shares the same flat CSR arrays instead of re-converting.
struct GraphSnapshot {
  std::string name;
  /// Monotonically increasing per name, starting at 1.
  uint64_t version = 0;
  /// FingerprintGraph(*graph) == FingerprintGraph(*csr).
  uint64_t fingerprint = 0;
  std::shared_ptr<const BipartiteGraph> graph;
  /// CSR form of the same graph, built once at Publish(); immutable and
  /// safe to share across ThreadPool workers.
  std::shared_ptr<const CsrGraph> csr;
};

class GraphRegistry {
 public:
  GraphRegistry() = default;
  GraphRegistry(const GraphRegistry&) = delete;
  GraphRegistry& operator=(const GraphRegistry&) = delete;

  /// Publishes `graph` under `name`, replacing any existing entry (the old
  /// snapshot stays valid for holders). Returns the new snapshot.
  /// Fails with InvalidArgument on an empty name.
  Result<GraphSnapshot> Publish(const std::string& name,
                                BipartiteGraph graph);

  /// Publishes an already-shared graph without copying it.
  Result<GraphSnapshot> Publish(const std::string& name,
                                std::shared_ptr<const BipartiteGraph> graph);

  /// Publishes the live edge set of an incremental-ingest GraphVersion
  /// under `name`. The snapshot's CSR reuses the version's memoized
  /// MaterializeCsr() (the frozen base itself when the delta-log is
  /// empty), and the snapshot fingerprint is
  /// version.ContentFingerprint() — equal to FingerprintGraph of the
  /// materialized adjacency and CSR forms by the graph/fingerprint.h
  /// contract, so ResultCache keys stay representation-independent: a
  /// batch job over a streamed-then-registered graph and one over the
  /// same content published from a BipartiteGraph share cache entries.
  Result<GraphSnapshot> PublishVersion(const std::string& name,
                                       const GraphVersion& version);

  /// Writes the named snapshot's CSR form as a kCsrGraph .efg binary
  /// snapshot (storage/snapshot_writer.h) — the registry's warm-start /
  /// snapshot-shipping format. NotFound when `name` is not published.
  Status SaveSnapshot(const std::string& name,
                      const std::string& path) const;

  /// Publishes the graph stored in an .efg snapshot under `name`, serving
  /// the CSR form zero-copy off a file mapping (ensemble jobs run
  /// directly on the mapped arrays; the adjacency form is materialized
  /// for baseline detectors). The file's content fingerprint is
  /// re-verified against the mapped payload before anything is published
  /// — and it becomes the snapshot's fingerprint, so ResultCache keys
  /// stay representation-independent: a job over a snapshot-loaded graph
  /// cache-hits against the same content published from TSV.
  Result<GraphSnapshot> LoadSnapshot(const std::string& name,
                                     const std::string& path);

  /// Current snapshot for `name`; NotFound if absent.
  Result<GraphSnapshot> Get(const std::string& name) const;

  /// Removes `name`; NotFound if absent. Holders of snapshots are
  /// unaffected.
  Status Remove(const std::string& name);

  /// Ascending list of published names.
  std::vector<std::string> Names() const;

  int64_t size() const;

 private:
  struct Entry {
    uint64_t version = 0;
    uint64_t fingerprint = 0;
    std::shared_ptr<const BipartiteGraph> graph;
    std::shared_ptr<const CsrGraph> csr;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_SERVICE_GRAPH_REGISTRY_H_
