// GraphRegistry: a thread-safe catalog of named, immutable BipartiteGraph
// snapshots — the service layer's source of truth for "which graph does
// this request mean".
//
// Publishing a graph under an existing name atomically replaces the entry
// (version bumps, fingerprint recomputes); readers holding the previous
// snapshot keep a valid shared_ptr, so in-flight detection jobs are
// isolated from concurrent re-publishes (snapshot isolation). Fingerprints
// are stable content hashes (common/hash.h) over node counts, edge
// endpoints, and weights, and key the service's ResultCache.
#ifndef ENSEMFDET_SERVICE_GRAPH_REGISTRY_H_
#define ENSEMFDET_SERVICE_GRAPH_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace ensemfdet {

/// Stable 64-bit content hash of a graph: covers |U|, |V|, every edge's
/// endpoints in id order, and per-edge weights when present. Two graphs
/// with equal fingerprints are (modulo hash collision) structurally
/// identical, so detection results over them are interchangeable.
uint64_t FingerprintGraph(const BipartiteGraph& graph);

/// One published graph: shared, immutable, fingerprinted.
struct GraphSnapshot {
  std::string name;
  /// Monotonically increasing per name, starting at 1.
  uint64_t version = 0;
  /// FingerprintGraph(*graph).
  uint64_t fingerprint = 0;
  std::shared_ptr<const BipartiteGraph> graph;
};

class GraphRegistry {
 public:
  GraphRegistry() = default;
  GraphRegistry(const GraphRegistry&) = delete;
  GraphRegistry& operator=(const GraphRegistry&) = delete;

  /// Publishes `graph` under `name`, replacing any existing entry (the old
  /// snapshot stays valid for holders). Returns the new snapshot.
  /// Fails with InvalidArgument on an empty name.
  Result<GraphSnapshot> Publish(const std::string& name,
                                BipartiteGraph graph);

  /// Publishes an already-shared graph without copying it.
  Result<GraphSnapshot> Publish(const std::string& name,
                                std::shared_ptr<const BipartiteGraph> graph);

  /// Current snapshot for `name`; NotFound if absent.
  Result<GraphSnapshot> Get(const std::string& name) const;

  /// Removes `name`; NotFound if absent. Holders of snapshots are
  /// unaffected.
  Status Remove(const std::string& name);

  /// Ascending list of published names.
  std::vector<std::string> Names() const;

  int64_t size() const;

 private:
  struct Entry {
    uint64_t version = 0;
    uint64_t fingerprint = 0;
    std::shared_ptr<const BipartiteGraph> graph;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_SERVICE_GRAPH_REGISTRY_H_
