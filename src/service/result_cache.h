// ResultCache: memoization of ensemble detection over immutable graphs.
//
// EnsemFDet is deterministic in (graph, config): the same snapshot and the
// same configuration always produce the same report. The cache exploits
// that by keying completed EnsemFDetReports on
//
//     (graph fingerprint, config hash)
//
// so repeated detection requests over an unchanged graph are served from
// memory instead of re-running N sample+FDET jobs — the amortize-repeated-
// queries win that production fraud pipelines live on (dashboards and
// reviewers re-request the same nightly graph many times).
//
// Eviction is LRU with a bounded entry count; reports are shared_ptr so an
// evicted entry stays alive for holders. All methods are thread-safe.
#ifndef ENSEMFDET_SERVICE_RESULT_CACHE_H_
#define ENSEMFDET_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "ensemble/ensemfdet.h"

namespace ensemfdet {

/// Stable 64-bit hash over every field of an EnsemFDetConfig that affects
/// detection output (method, N, S, reweighting, seed, and the full FDET /
/// density configuration). Configs with equal hashes produce identical
/// reports on the same graph.
uint64_t HashEnsemFDetConfig(const EnsemFDetConfig& config);

struct ResultCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;

  int64_t lookups() const { return hits + misses; }
};

class ResultCache {
 public:
  /// `capacity` = max retained reports (≥ 1).
  explicit ResultCache(size_t capacity = 128);
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached report for (graph_fingerprint, config_hash), or
  /// nullptr on miss. Counts a hit/miss and refreshes LRU order.
  std::shared_ptr<const EnsemFDetReport> Lookup(uint64_t graph_fingerprint,
                                                uint64_t config_hash);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entry when over capacity.
  void Insert(uint64_t graph_fingerprint, uint64_t config_hash,
              std::shared_ptr<const EnsemFDetReport> report);

  /// Drops every entry (stats are retained).
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  ResultCacheStats stats() const;

 private:
  struct Key {
    uint64_t graph_fingerprint;
    uint64_t config_hash;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    Key key;
    std::shared_ptr<const EnsemFDetReport> report;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  ResultCacheStats stats_;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_SERVICE_RESULT_CACHE_H_
