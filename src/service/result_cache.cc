#include "service/result_cache.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "obs/metrics.h"

namespace ensemfdet {

namespace {

// Process-wide mirrors of the per-instance ResultCacheStats: the struct
// keeps its exact public stats() semantics (per cache, mutex-consistent)
// while scrapes see the union across every cache in the process.
struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* insertions;
  obs::Counter* evictions;
};

CacheMetrics& Metrics() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static CacheMetrics m{
      reg.GetCounter("ensemfdet_cache_hits_total"),
      reg.GetCounter("ensemfdet_cache_misses_total"),
      reg.GetCounter("ensemfdet_cache_insertions_total"),
      reg.GetCounter("ensemfdet_cache_evictions_total"),
  };
  return m;
}

}  // namespace

uint64_t HashEnsemFDetConfig(const EnsemFDetConfig& config) {
  uint64_t h = HashValue<uint64_t>(0x636f6e666967u);  // domain tag
  h = HashCombine(h, HashValue(static_cast<int32_t>(config.method)));
  h = HashCombine(h, HashValue(config.num_samples));
  h = HashCombine(h, HashValue(config.ratio));
  h = HashCombine(h, HashValue(config.reweight_edges));
  h = HashCombine(h, HashValue(config.seed));
  const FdetConfig& fdet = config.fdet;
  h = HashCombine(h,
                  HashValue(static_cast<int32_t>(fdet.density.weight_kind)));
  h = HashCombine(h, HashValue(fdet.density.log_offset));
  h = HashCombine(h, HashValue(static_cast<int32_t>(fdet.policy)));
  h = HashCombine(h, HashValue(fdet.max_blocks));
  h = HashCombine(h, HashValue(fdet.fixed_k));
  h = HashCombine(h, HashValue(fdet.elbow_patience));
  h = HashCombine(h, HashValue(fdet.min_block_score));
  return h;
}

size_t ResultCache::KeyHash::operator()(const Key& k) const {
  return static_cast<size_t>(
      HashCombine(k.graph_fingerprint, k.config_hash));
}

ResultCache::ResultCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

std::shared_ptr<const EnsemFDetReport> ResultCache::Lookup(
    uint64_t graph_fingerprint, uint64_t config_hash) {
  const Key key{graph_fingerprint, config_hash};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    Metrics().misses->Increment();
    return nullptr;
  }
  ++stats_.hits;
  Metrics().hits->Increment();
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->report;
}

void ResultCache::Insert(uint64_t graph_fingerprint, uint64_t config_hash,
                         std::shared_ptr<const EnsemFDetReport> report) {
  if (report == nullptr) return;
  const Key key{graph_fingerprint, config_hash};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->report = std::move(report);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(report)});
  index_[key] = lru_.begin();
  ++stats_.insertions;
  Metrics().insertions->Increment();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    Metrics().evictions->Increment();
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ensemfdet
