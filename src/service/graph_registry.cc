#include "service/graph_registry.h"

#include <span>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace ensemfdet {

Result<GraphSnapshot> GraphRegistry::Publish(const std::string& name,
                                             BipartiteGraph graph) {
  return Publish(name,
                 std::make_shared<const BipartiteGraph>(std::move(graph)));
}

Result<GraphSnapshot> GraphRegistry::Publish(
    const std::string& name, std::shared_ptr<const BipartiteGraph> graph) {
  if (name.empty()) {
    return Status::InvalidArgument("registry: graph name must be non-empty");
  }
  if (graph == nullptr) {
    return Status::InvalidArgument("registry: graph must be non-null");
  }
  // Fingerprint and CSR conversion outside the lock: both scan every edge.
  const uint64_t fingerprint = FingerprintGraph(*graph);
  auto csr = std::make_shared<const CsrGraph>(CsrGraph::FromBipartite(*graph));

  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  entry.version += 1;
  entry.fingerprint = fingerprint;
  entry.graph = std::move(graph);
  entry.csr = std::move(csr);
  return GraphSnapshot{name, entry.version, entry.fingerprint, entry.graph,
                       entry.csr};
}

Result<GraphSnapshot> GraphRegistry::PublishVersion(
    const std::string& name, const GraphVersion& version) {
  if (name.empty()) {
    return Status::InvalidArgument("registry: graph name must be non-empty");
  }
  // Materialization and fingerprinting outside the lock; the CSR is the
  // version's own memoized copy (shared with every other consumer of the
  // version), the adjacency form is rebuilt from the same live edge set.
  std::shared_ptr<const CsrGraph> csr = version.MaterializeCsr();
  auto graph = std::make_shared<const BipartiteGraph>(version.Materialize());
  const uint64_t fingerprint = version.ContentFingerprint();
  // The representation-independence contract this API exists for.
  ENSEMFDET_DCHECK(FingerprintGraph(*graph) == fingerprint)
      << "GraphVersion fingerprint diverged from the materialized graph";

  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  entry.version += 1;
  entry.fingerprint = fingerprint;
  entry.graph = std::move(graph);
  entry.csr = std::move(csr);
  return GraphSnapshot{name, entry.version, entry.fingerprint, entry.graph,
                       entry.csr};
}

Status GraphRegistry::SaveSnapshot(const std::string& name,
                                   const std::string& path) const {
  ENSEMFDET_ASSIGN_OR_RETURN(GraphSnapshot snapshot, Get(name));
  // WriteCsrGraphSnapshot stamps FingerprintGraph(csr) into the header,
  // which equals the snapshot's fingerprint by the registry invariant.
  return storage::WriteCsrGraphSnapshot(*snapshot.csr, path);
}

Result<GraphSnapshot> GraphRegistry::LoadSnapshot(const std::string& name,
                                                  const std::string& path) {
  if (name.empty()) {
    return Status::InvalidArgument("registry: graph name must be non-empty");
  }
  ENSEMFDET_ASSIGN_OR_RETURN(storage::MappedCsrGraph mapped,
                             storage::MappedCsrGraph::Open(path));
  // Never publish content that does not hash to the writer's claim.
  ENSEMFDET_RETURN_NOT_OK(mapped.VerifyFingerprint());
  // The CSR stays a zero-copy view (its backing handle keeps the mapping
  // alive); the adjacency form is materialized from it once for the
  // baseline detectors and evaluation paths.
  std::shared_ptr<const CsrGraph> csr = mapped.shared();
  auto graph =
      std::make_shared<const BipartiteGraph>(csr->ToBipartite());
  const uint64_t fingerprint = mapped.fingerprint();

  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  entry.version += 1;
  entry.fingerprint = fingerprint;
  entry.graph = std::move(graph);
  entry.csr = std::move(csr);
  return GraphSnapshot{name, entry.version, entry.fingerprint, entry.graph,
                       entry.csr};
}

Result<GraphSnapshot> GraphRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("registry: no graph named '" + name + "'");
  }
  const Entry& entry = it->second;
  return GraphSnapshot{name, entry.version, entry.fingerprint, entry.graph,
                       entry.csr};
}

Status GraphRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.erase(name) == 0) {
    return Status::NotFound("registry: no graph named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> GraphRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

int64_t GraphRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

}  // namespace ensemfdet
