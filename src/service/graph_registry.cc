#include "service/graph_registry.h"

#include <span>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace ensemfdet {

namespace {

// Shared core of both FingerprintGraph overloads: one definition of the
// byte stream, so the "CSR and adjacency forms fingerprint identically"
// cache-key contract can never drift. `Graph` must expose num_users /
// num_merchants / num_edges / has_weights / edge_weight.
template <typename Graph>
uint64_t FingerprintImpl(const Graph& graph, std::span<const Edge> edges) {
  // Shape first: distinct shapes can never collide regardless of content
  // hashing, and isolated nodes (which edges can't see) still matter for
  // vote-table sizing.
  uint64_t h = HashValue<uint64_t>(0x656e73656d66u);  // domain tag
  h = HashCombine(h, HashValue(graph.num_users()));
  h = HashCombine(h, HashValue(graph.num_merchants()));
  h = HashCombine(h, HashValue(graph.num_edges()));

  // Edge endpoints: Edge is two packed uint32s (no padding), and edge ids
  // are a canonical order (GraphBuilder sorts + dedups), so hashing the
  // raw array is stable.
  static_assert(sizeof(Edge) == 2 * sizeof(uint32_t));
  h = HashCombine(h, Hash64(edges.data(), edges.size_bytes()));

  if (graph.has_weights()) {
    uint64_t wh = 0;
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      wh = HashCombine(wh, HashValue(graph.edge_weight(e)));
    }
    h = HashCombine(h, wh);
  }
  return h;
}

}  // namespace

uint64_t FingerprintGraph(const BipartiteGraph& graph) {
  return FingerprintImpl(graph, graph.edges());
}

uint64_t FingerprintGraph(const CsrGraph& graph) {
  // Reassemble the canonical endpoint-pair array (the user-side CSR is the
  // merchant column in EdgeId order; edge_users is the user column) so the
  // byte stream matches the BipartiteGraph overload exactly.
  std::vector<Edge> edges(static_cast<size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    edges[static_cast<size_t>(e)] = {graph.edge_user(e),
                                     graph.edge_merchant(e)};
  }
  return FingerprintImpl(graph, edges);
}

Result<GraphSnapshot> GraphRegistry::Publish(const std::string& name,
                                             BipartiteGraph graph) {
  return Publish(name,
                 std::make_shared<const BipartiteGraph>(std::move(graph)));
}

Result<GraphSnapshot> GraphRegistry::Publish(
    const std::string& name, std::shared_ptr<const BipartiteGraph> graph) {
  if (name.empty()) {
    return Status::InvalidArgument("registry: graph name must be non-empty");
  }
  if (graph == nullptr) {
    return Status::InvalidArgument("registry: graph must be non-null");
  }
  // Fingerprint and CSR conversion outside the lock: both scan every edge.
  const uint64_t fingerprint = FingerprintGraph(*graph);
  auto csr = std::make_shared<const CsrGraph>(CsrGraph::FromBipartite(*graph));

  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  entry.version += 1;
  entry.fingerprint = fingerprint;
  entry.graph = std::move(graph);
  entry.csr = std::move(csr);
  return GraphSnapshot{name, entry.version, entry.fingerprint, entry.graph,
                       entry.csr};
}

Result<GraphSnapshot> GraphRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("registry: no graph named '" + name + "'");
  }
  const Entry& entry = it->second;
  return GraphSnapshot{name, entry.version, entry.fingerprint, entry.graph,
                       entry.csr};
}

Status GraphRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.erase(name) == 0) {
    return Status::NotFound("registry: no graph named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> GraphRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

int64_t GraphRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

}  // namespace ensemfdet
