#include "datagen/transaction_stream.h"

#include <algorithm>

#include "common/rng.h"

namespace ensemfdet {

Result<std::vector<Transaction>> BuildTransactionStream(
    const Dataset& dataset, const StreamTimelineConfig& config) {
  if (config.horizon < 1) {
    return Status::InvalidArgument("horizon must be >= 1");
  }
  if (config.burst_duration < 1 || config.burst_duration > config.horizon) {
    return Status::InvalidArgument(
        "burst_duration must be in [1, horizon]");
  }

  // user → fraud group index (-1 = benign).
  std::vector<int32_t> group_of(static_cast<size_t>(
                                    dataset.graph.num_users()),
                                -1);
  for (size_t g = 0; g < dataset.fraud_user_groups.size(); ++g) {
    for (UserId u : dataset.fraud_user_groups[g]) {
      group_of[u] = static_cast<int32_t>(g);
    }
  }

  const int64_t num_groups =
      static_cast<int64_t>(dataset.fraud_user_groups.size());
  auto burst_start = [&](int32_t g) {
    const int64_t centre = (g + 1) * config.horizon / (num_groups + 1);
    const int64_t start = centre - config.burst_duration / 2;
    return std::clamp<int64_t>(start, 0,
                               config.horizon - config.burst_duration);
  };

  Rng rng(config.seed);
  std::vector<Transaction> events;
  events.reserve(static_cast<size_t>(dataset.graph.num_edges()));
  for (EdgeId e = 0; e < dataset.graph.num_edges(); ++e) {
    const Edge& edge = dataset.graph.edge(e);
    Transaction tx;
    tx.user = edge.user;
    tx.merchant = edge.merchant;
    const int32_t group = group_of[edge.user];
    if (group >= 0) {
      tx.timestamp = burst_start(group) +
                     static_cast<int64_t>(rng.NextBounded(
                         static_cast<uint64_t>(config.burst_duration)));
    } else {
      tx.timestamp = static_cast<int64_t>(
          rng.NextBounded(static_cast<uint64_t>(config.horizon)));
    }
    events.push_back(tx);
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const Transaction& a, const Transaction& b) {
                     return a.timestamp < b.timestamp;
                   });
  return events;
}

Result<std::vector<IngestBatch>> SliceIntoBatches(
    const std::vector<Transaction>& events, int64_t batch_events) {
  if (batch_events < 1) {
    return Status::InvalidArgument("batch_events must be >= 1");
  }
  std::vector<IngestBatch> batches;
  batches.reserve((events.size() + static_cast<size_t>(batch_events) - 1) /
                  static_cast<size_t>(batch_events));
  for (size_t begin = 0; begin < events.size();
       begin += static_cast<size_t>(batch_events)) {
    const size_t end =
        std::min(events.size(), begin + static_cast<size_t>(batch_events));
    IngestBatch batch;
    batch.transactions.assign(events.begin() + begin, events.begin() + end);
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace ensemfdet
