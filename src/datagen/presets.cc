#include "datagen/presets.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ensemfdet {

namespace {

struct TableOneRow {
  const char* name;
  int64_t users;
  int64_t fraud_users;
  int64_t merchants;
  int64_t edges;
  int num_groups;
};

// Paper Table I, plus a group count in the paper's "few to few tens" range
// (its FDET runs all truncated below 15 blocks).
constexpr TableOneRow kRows[] = {
    {"dataset1", 454925, 24247, 226585, 1023846, 10},
    {"dataset2", 2194325, 16035, 120867, 2790517, 8},
    {"dataset3", 4332696, 101702, 556634, 7997696, 12},
};

const TableOneRow& RowFor(JdPreset preset) {
  return kRows[static_cast<int>(preset)];
}

int64_t ScaleCount(int64_t value, double scale, int64_t floor_value) {
  return std::max<int64_t>(
      floor_value,
      static_cast<int64_t>(std::llround(static_cast<double>(value) * scale)));
}

}  // namespace

const char* JdPresetName(JdPreset preset) { return RowFor(preset).name; }

std::vector<JdPreset> AllJdPresets() {
  return {JdPreset::kDataset1, JdPreset::kDataset2, JdPreset::kDataset3};
}

DataGenConfig MakeJdPresetConfig(JdPreset preset, double scale,
                                 uint64_t seed) {
  ENSEMFDET_CHECK(scale > 0.0 && scale <= 1.0)
      << "scale must be in (0, 1], got " << scale;
  const TableOneRow& row = RowFor(preset);

  DataGenConfig config;
  config.name = row.name;
  config.seed = seed;
  config.num_users = ScaleCount(row.users, scale, 400);
  config.num_merchants = ScaleCount(row.merchants, scale, 200);
  config.num_edges = ScaleCount(row.edges, scale, 1200);
  int64_t fraud_users = ScaleCount(row.fraud_users, scale, 60);
  fraud_users = std::min(fraud_users, config.num_users / 4);

  // Fixed group count; group sizes scale. Group densities decline only
  // mildly (edges_per_user 8 → 6) so the per-block φ series forms the
  // plateau-then-cliff shape of the paper's Fig 1: comparable φ across the
  // planted groups, then a sharp drop to background blocks — which is what
  // makes the Δ²φ truncation point (Definition 3) well defined.
  const int groups = row.num_groups;
  // ~1/5 of the fraud population forms micro-rings (below); the rest the
  // main campaign groups.
  const int64_t main_fraud_users = fraud_users - fraud_users / 5;
  const int64_t users_per_group =
      std::max<int64_t>(4, main_fraud_users / groups);
  for (int g = 0; g < groups; ++g) {
    FraudGroupSpec spec;
    spec.num_users = users_per_group;
    // Campaign groups span a few-to-tens of colluding merchants (merchant-
    // centric fraud: each colluding merchant serves many accounts). Wide
    // groups are what make merchant-side bagging retain 2-D block
    // structure in Fig 5 — a ≥10%-sample usually catches several group
    // merchants.
    spec.num_merchants = std::max<int64_t>(4, users_per_group / 8);
    const double t =
        groups == 1 ? 0.0 : static_cast<double>(g) / (groups - 1);
    spec.edges_per_user = 8.0 - 2.0 * t;  // 8 → 6 across groups
    spec.camouflage_per_user = 1.0;
    config.fraud_groups.push_back(spec);
  }

  // Micro-rings: many small scattered fraud cells (a handful of accounts ×
  // 2-3 private merchants). Individually too small to claim a top-25
  // spectral component — the "attacks of small enough scale" regime FBOX
  // targets — while still dense enough for φ-based peeling to reach.
  const int64_t micro_fraud_users = fraud_users - users_per_group * groups;
  const int64_t micro_ring_size = std::max<int64_t>(4, users_per_group / 6);
  const int num_micro_rings =
      static_cast<int>(micro_fraud_users / micro_ring_size);
  for (int r = 0; r < num_micro_rings; ++r) {
    FraudGroupSpec ring;
    ring.num_users = micro_ring_size;
    ring.num_merchants = 2 + (r % 2);
    ring.edges_per_user = 2.5;
    ring.camouflage_per_user = 0.5;
    config.fraud_groups.push_back(ring);
  }

  // Legitimate shopping communities: the benign dense structure that makes
  // spectral detectors unstable on real e-commerce graphs (paper §V-C1:
  // SPOKEN/FBOX "not able to keep a stable performance"). Each community
  // is ~8x a fraud group's user count at a quarter of its per-user rate,
  // so φ ranks it well below fraud blocks while its raw spectral energy is
  // comparable.
  const int num_communities = std::max(2, groups / 2);
  for (int c = 0; c < num_communities; ++c) {
    CommunitySpec community;
    community.num_users =
        std::min<int64_t>(users_per_group * 8, config.num_users / 16);
    community.num_users = std::max<int64_t>(community.num_users, 8);
    community.num_merchants =
        std::min<int64_t>(12 + 2 * c, config.num_merchants / 4);
    community.num_merchants = std::max<int64_t>(community.num_merchants, 2);
    community.edges_per_user = 2.0;
    config.communities.push_back(community);
  }

  // Micro-communities: tight benign co-purchase clusters around POPULAR
  // merchants (flash sales, TV-promoted items). Spectrally these look just
  // like fraud rings — localized singular components with large entries —
  // which is what destabilizes SPOKEN on real data; but because their
  // merchants are popular, the 1/log(c+d) column discount keeps their φ
  // below the fraud blocks sitting on obscure colluding merchants.
  for (int c = 0; c < groups; ++c) {
    CommunitySpec micro;
    micro.num_users = std::max<int64_t>(6, users_per_group);
    micro.num_merchants = std::min<int64_t>(4, config.num_merchants / 4);
    micro.num_merchants = std::max<int64_t>(micro.num_merchants, 2);
    micro.edges_per_user = 3.0;
    config.communities.push_back(micro);
  }

  // Guard: groups must fit the merchant budget even at tiny scales.
  int64_t need_merchants = 0;
  for (const FraudGroupSpec& g : config.fraud_groups) {
    need_merchants += g.num_merchants;
  }
  ENSEMFDET_CHECK(need_merchants <= config.num_merchants)
      << "preset scale too small for group structure";

  config.blacklist_miss_rate = 0.10;
  config.blacklist_noise_rate = 0.02;
  return config;
}

Result<Dataset> GenerateJdPreset(JdPreset preset, double scale,
                                 uint64_t seed) {
  return GenerateDataset(MakeJdPresetConfig(preset, scale, seed));
}

}  // namespace ensemfdet
