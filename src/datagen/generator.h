// Synthetic "who buy-from where" dataset generator.
//
// Stands in for the paper's proprietary JD.com transaction logs (see
// DESIGN.md substitution record). The generator plants exactly the
// structures the paper says fraud leaves in the graph:
//
//   * background traffic — Zipf-popular users × Zipf-popular merchants,
//     heavy-tailed like real e-commerce order logs;
//   * fraud groups — disjoint user×merchant blocks with high internal
//     density (synchronized behaviour), densities varying across groups so
//     FDET's φ series has a real elbow;
//   * camouflage — fraud users also buy from popular legitimate merchants,
//     exercising the log-weighted density score's camouflage resistance;
//   * blacklist imperfection — a miss rate (fraudsters absent from the
//     blacklist: appeals, undiscovered accounts) and a noise rate (benign
//     users wrongly blacklisted), mirroring how JD's ground truth is
//     produced by manual review.
#ifndef ENSEMFDET_DATAGEN_GENERATOR_H_
#define ENSEMFDET_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "eval/labels.h"
#include "graph/bipartite_graph.h"

namespace ensemfdet {

/// One planted fraud group: a dense block of num_users × num_merchants.
struct FraudGroupSpec {
  int64_t num_users = 0;
  int64_t num_merchants = 0;
  /// Mean within-block purchases per fraud user (Poisson, clamped to
  /// [1, num_merchants]).
  double edges_per_user = 5.0;
  /// Mean camouflage purchases per fraud user at popular legitimate
  /// merchants (Poisson, may be 0).
  double camouflage_per_user = 1.0;
};

/// One legitimate shopping community: a moderately dense cluster of benign
/// users around popular merchants (regional/interest-based co-shopping).
/// Communities carry substantial spectral energy — they are what make
/// SVD-based detectors (SPOKEN/FBOX) unstable on real e-commerce graphs —
/// but their merchants are popular, so the log-degree-discounted density
/// score φ keeps them well below fraud blocks.
struct CommunitySpec {
  int64_t num_users = 0;
  int64_t num_merchants = 0;
  /// Mean in-community purchases per member (Poisson, clamped to
  /// [1, num_merchants]).
  double edges_per_user = 2.0;
};

struct DataGenConfig {
  std::string name = "synthetic";
  int64_t num_users = 0;
  int64_t num_merchants = 0;
  /// Total edge budget; background edges fill whatever the fraud groups
  /// leave of it. Duplicate collapses make the final graph slightly
  /// smaller — the actual count is in the built graph.
  int64_t num_edges = 0;
  /// Popularity skew of background traffic per side (0 = uniform).
  double user_zipf_exponent = 0.7;
  double merchant_zipf_exponent = 1.05;
  std::vector<FraudGroupSpec> fraud_groups;
  /// Legitimate communities (never blacklisted). Their merchants are drawn
  /// from the popular end of the merchant distribution; their users from
  /// the benign population.
  std::vector<CommunitySpec> communities;
  /// Fraction of planted fraud users absent from the blacklist.
  double blacklist_miss_rate = 0.10;
  /// Benign users wrongly blacklisted, as a fraction of planted fraud
  /// count.
  double blacklist_noise_rate = 0.02;
  uint64_t seed = 7;
};

/// A generated dataset: the graph, the evaluation blacklist, and the exact
/// planted truth (for tests that must not depend on label noise).
struct Dataset {
  std::string name;
  BipartiteGraph graph;
  /// Evaluation ground truth (blacklist with misses and noise applied).
  LabelSet blacklist;
  /// Exact planted fraud users, ascending.
  std::vector<UserId> planted_fraud_users;
  /// Exact planted fraud merchants, ascending.
  std::vector<MerchantId> planted_fraud_merchants;
  /// Planted user groups, in spec order (for per-group recovery tests).
  std::vector<std::vector<UserId>> fraud_user_groups;
  /// Planted legitimate-community user groups, in spec order.
  std::vector<std::vector<UserId>> community_user_groups;
};

/// Generates a dataset; deterministic in config.seed.
/// Fails with InvalidArgument when the fraud groups don't fit the node /
/// edge budgets or rates fall outside [0, 1].
Result<Dataset> GenerateDataset(const DataGenConfig& config);

}  // namespace ensemfdet

#endif  // ENSEMFDET_DATAGEN_GENERATOR_H_
