#include "datagen/generator.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "datagen/zipf.h"
#include "graph/graph_builder.h"

namespace ensemfdet {

namespace {

// Knuth's Poisson sampler; fine for the small means used here (λ ≲ 30).
int64_t SamplePoisson(double lambda, Rng* rng) {
  if (lambda <= 0.0) return 0;
  const double limit = std::exp(-lambda);
  double product = rng->NextDouble();
  int64_t count = 0;
  while (product > limit) {
    ++count;
    product *= rng->NextDouble();
  }
  return count;
}

Status ValidateConfig(const DataGenConfig& config) {
  if (config.num_users < 1 || config.num_merchants < 1) {
    return Status::InvalidArgument("dataset needs at least one node per side");
  }
  if (config.num_edges < 0) {
    return Status::InvalidArgument("num_edges must be >= 0");
  }
  auto rate_ok = [](double r) { return r >= 0.0 && r <= 1.0; };
  if (!rate_ok(config.blacklist_miss_rate) ||
      !rate_ok(config.blacklist_noise_rate)) {
    return Status::InvalidArgument("blacklist rates must be in [0, 1]");
  }
  int64_t fraud_users = 0;
  int64_t fraud_merchants = 0;
  for (const FraudGroupSpec& g : config.fraud_groups) {
    if (g.num_users < 1 || g.num_merchants < 1) {
      return Status::InvalidArgument("fraud group must have users and "
                                     "merchants");
    }
    if (g.edges_per_user < 0.0 || g.camouflage_per_user < 0.0) {
      return Status::InvalidArgument("fraud group edge rates must be >= 0");
    }
    fraud_users += g.num_users;
    fraud_merchants += g.num_merchants;
  }
  if (fraud_users > config.num_users) {
    return Status::InvalidArgument(
        "fraud groups need " + std::to_string(fraud_users) +
        " users but dataset has " + std::to_string(config.num_users));
  }
  if (fraud_merchants > config.num_merchants) {
    return Status::InvalidArgument(
        "fraud groups need " + std::to_string(fraud_merchants) +
        " merchants but dataset has " + std::to_string(config.num_merchants));
  }
  int64_t community_users = 0;
  for (const CommunitySpec& c : config.communities) {
    if (c.num_users < 1 || c.num_merchants < 1) {
      return Status::InvalidArgument("community must have users and "
                                     "merchants");
    }
    if (c.edges_per_user < 0.0) {
      return Status::InvalidArgument("community edge rate must be >= 0");
    }
    if (c.num_merchants > config.num_merchants) {
      return Status::InvalidArgument("community wider than merchant side");
    }
    community_users += c.num_users;
  }
  if (community_users + fraud_users > config.num_users) {
    return Status::InvalidArgument(
        "fraud groups and communities together need " +
        std::to_string(community_users + fraud_users) +
        " users but dataset has " + std::to_string(config.num_users));
  }
  return Status::OK();
}

}  // namespace

Result<Dataset> GenerateDataset(const DataGenConfig& config) {
  ENSEMFDET_RETURN_NOT_OK(ValidateConfig(config));
  Rng root(config.seed);
  Rng assign_rng = root.Split(0);
  Rng fraud_rng = root.Split(1);
  Rng background_rng = root.Split(2);
  Rng blacklist_rng = root.Split(3);
  Rng community_rng = root.Split(4);

  Dataset dataset;
  dataset.name = config.name;

  // --- Assign fraud and community identities ------------------------------
  int64_t total_fraud_users = 0;
  int64_t total_fraud_merchants = 0;
  for (const FraudGroupSpec& g : config.fraud_groups) {
    total_fraud_users += g.num_users;
    total_fraud_merchants += g.num_merchants;
  }
  int64_t total_community_users = 0;
  for (const CommunitySpec& c : config.communities) {
    total_community_users += c.num_users;
  }
  // One draw covers both populations so fraud and community members are
  // disjoint: the prefix feeds fraud groups, the suffix communities.
  std::vector<uint64_t> fraud_user_pool = assign_rng.SampleWithoutReplacement(
      static_cast<uint64_t>(config.num_users),
      static_cast<uint64_t>(total_fraud_users + total_community_users));
  std::vector<uint64_t> fraud_merchant_pool =
      assign_rng.SampleWithoutReplacement(
          static_cast<uint64_t>(config.num_merchants),
          static_cast<uint64_t>(total_fraud_merchants));

  GraphBuilder builder(config.num_users, config.num_merchants);
  builder.Reserve(config.num_edges);

  // Popularity order for camouflage targets and background traffic. Ranks
  // are mapped through a random permutation so popularity is independent of
  // raw node id.
  std::vector<uint32_t> user_by_rank(static_cast<size_t>(config.num_users));
  for (size_t i = 0; i < user_by_rank.size(); ++i) {
    user_by_rank[i] = static_cast<uint32_t>(i);
  }
  background_rng.Shuffle(&user_by_rank);
  std::vector<uint32_t> merchant_by_rank(
      static_cast<size_t>(config.num_merchants));
  for (size_t i = 0; i < merchant_by_rank.size(); ++i) {
    merchant_by_rank[i] = static_cast<uint32_t>(i);
  }
  background_rng.Shuffle(&merchant_by_rank);

  const ZipfSampler user_zipf(config.num_users, config.user_zipf_exponent);
  const ZipfSampler merchant_zipf(config.num_merchants,
                                  config.merchant_zipf_exponent);

  // --- Plant fraud groups -------------------------------------------------
  int64_t fraud_edges = 0;
  size_t user_cursor = 0;
  size_t merchant_cursor = 0;
  for (const FraudGroupSpec& spec : config.fraud_groups) {
    std::vector<UserId> group_users;
    group_users.reserve(static_cast<size_t>(spec.num_users));
    for (int64_t i = 0; i < spec.num_users; ++i) {
      group_users.push_back(
          static_cast<UserId>(fraud_user_pool[user_cursor++]));
    }
    std::vector<MerchantId> group_merchants;
    group_merchants.reserve(static_cast<size_t>(spec.num_merchants));
    for (int64_t i = 0; i < spec.num_merchants; ++i) {
      group_merchants.push_back(
          static_cast<MerchantId>(fraud_merchant_pool[merchant_cursor++]));
    }

    for (UserId u : group_users) {
      // Within-block purchases: synchronized behaviour.
      int64_t within = std::clamp<int64_t>(
          SamplePoisson(spec.edges_per_user, &fraud_rng), 1,
          spec.num_merchants);
      std::vector<uint64_t> picks = fraud_rng.SampleWithoutReplacement(
          static_cast<uint64_t>(spec.num_merchants),
          static_cast<uint64_t>(within));
      for (uint64_t p : picks) {
        builder.AddEdge(u, group_merchants[static_cast<size_t>(p)]);
        ++fraud_edges;
      }
      // Camouflage purchases at popular legitimate merchants.
      int64_t camouflage = SamplePoisson(spec.camouflage_per_user, &fraud_rng);
      for (int64_t cidx = 0; cidx < camouflage; ++cidx) {
        int64_t rank = merchant_zipf.Sample(&fraud_rng);
        builder.AddEdge(u, merchant_by_rank[static_cast<size_t>(rank)]);
        ++fraud_edges;
      }
    }

    std::sort(group_users.begin(), group_users.end());
    dataset.fraud_user_groups.push_back(group_users);
    dataset.planted_fraud_users.insert(dataset.planted_fraud_users.end(),
                                       group_users.begin(),
                                       group_users.end());
    dataset.planted_fraud_merchants.insert(
        dataset.planted_fraud_merchants.end(), group_merchants.begin(),
        group_merchants.end());
  }
  std::sort(dataset.planted_fraud_users.begin(),
            dataset.planted_fraud_users.end());
  std::sort(dataset.planted_fraud_merchants.begin(),
            dataset.planted_fraud_merchants.end());

  // --- Plant legitimate communities ----------------------------------------
  // Members are benign users (disjoint from fraud, see pool draw above);
  // community merchants come from the popular end of the catalogue, so the
  // cluster's column weights are small under φ while its raw spectral
  // energy remains large.
  int64_t community_edges = 0;
  for (const CommunitySpec& spec : config.communities) {
    std::vector<UserId> members;
    members.reserve(static_cast<size_t>(spec.num_users));
    for (int64_t i = 0; i < spec.num_users; ++i) {
      members.push_back(static_cast<UserId>(fraud_user_pool[user_cursor++]));
    }
    // Merchants: distinct draws from the top-20% popularity ranks (at
    // least wide enough to fit the request).
    const int64_t popular_window = std::max<int64_t>(
        spec.num_merchants, config.num_merchants / 5);
    std::vector<uint64_t> ranks = community_rng.SampleWithoutReplacement(
        static_cast<uint64_t>(popular_window),
        static_cast<uint64_t>(spec.num_merchants));
    std::vector<MerchantId> venues;
    venues.reserve(ranks.size());
    for (uint64_t r : ranks) {
      venues.push_back(merchant_by_rank[static_cast<size_t>(r)]);
    }

    for (UserId u : members) {
      int64_t purchases = std::clamp<int64_t>(
          SamplePoisson(spec.edges_per_user, &community_rng), 1,
          spec.num_merchants);
      std::vector<uint64_t> picks = community_rng.SampleWithoutReplacement(
          static_cast<uint64_t>(spec.num_merchants),
          static_cast<uint64_t>(purchases));
      for (uint64_t p : picks) {
        builder.AddEdge(u, venues[static_cast<size_t>(p)]);
        ++community_edges;
      }
    }
    std::sort(members.begin(), members.end());
    dataset.community_user_groups.push_back(std::move(members));
  }

  // --- Background traffic --------------------------------------------------
  const int64_t background_edges = std::max<int64_t>(
      0, config.num_edges - fraud_edges - community_edges);
  for (int64_t e = 0; e < background_edges; ++e) {
    const int64_t user_rank = user_zipf.Sample(&background_rng);
    const int64_t merchant_rank = merchant_zipf.Sample(&background_rng);
    builder.AddEdge(user_by_rank[static_cast<size_t>(user_rank)],
                    merchant_by_rank[static_cast<size_t>(merchant_rank)]);
  }

  ENSEMFDET_ASSIGN_OR_RETURN(dataset.graph,
                             builder.Build(DuplicatePolicy::kKeepFirst));

  // --- Blacklist: planted truth with misses, plus benign noise -------------
  dataset.blacklist = LabelSet(config.num_users);
  for (UserId u : dataset.planted_fraud_users) {
    if (!blacklist_rng.NextBernoulli(config.blacklist_miss_rate)) {
      dataset.blacklist.MarkFraud(u);
    }
  }
  const int64_t noise_count = static_cast<int64_t>(
      std::llround(config.blacklist_noise_rate *
                   static_cast<double>(total_fraud_users)));
  std::vector<bool> is_planted(static_cast<size_t>(config.num_users), false);
  for (UserId u : dataset.planted_fraud_users) is_planted[u] = true;
  int64_t added = 0;
  // Rejection-sample benign users; the benign pool vastly outnumbers the
  // planted pool in every realistic config, so this terminates fast.
  int64_t attempts = 0;
  const int64_t max_attempts = 100 * (noise_count + 1);
  while (added < noise_count && attempts < max_attempts) {
    ++attempts;
    const UserId u = static_cast<UserId>(blacklist_rng.NextBounded(
        static_cast<uint64_t>(config.num_users)));
    if (is_planted[u] || dataset.blacklist.IsFraud(u)) continue;
    dataset.blacklist.MarkFraud(u);
    ++added;
  }
  return dataset;
}

}  // namespace ensemfdet
