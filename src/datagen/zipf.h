// Zipf-distributed index sampling for heavy-tailed background traffic.
//
// Real e-commerce graphs have power-law popularity on both sides (a few
// merchants take most orders; most users buy once or twice). The background
// edges of the synthetic datasets draw endpoints from ZipfSampler so the
// generated degree distributions mirror Table I's shape.
#ifndef ENSEMFDET_DATAGEN_ZIPF_H_
#define ENSEMFDET_DATAGEN_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace ensemfdet {

/// Samples ranks r ∈ [0, n) with P(r) ∝ 1/(r+1)^exponent by inverse-CDF
/// binary search over a precomputed cumulative table (O(n) memory, O(log n)
/// per draw, exact distribution).
class ZipfSampler {
 public:
  /// `n` ≥ 1, `exponent` ≥ 0 (0 = uniform).
  ZipfSampler(int64_t n, double exponent);

  int64_t n() const { return static_cast<int64_t>(cdf_.size()); }
  double exponent() const { return exponent_; }

  /// Draws one rank (0 = most popular).
  int64_t Sample(Rng* rng) const;

  /// P(rank).
  double Probability(int64_t rank) const;

 private:
  double exponent_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r)
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_DATAGEN_ZIPF_H_
