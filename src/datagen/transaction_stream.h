// Timestamped transaction streams for the windowed detector.
//
// Turns a generated Dataset into a campaign-day timeline: background
// purchases spread across the whole horizon, each fraud group compressed
// into its own short burst (the paper's "synchronized behavior ...
// extremely synchronized behavior patterns within a short time"), and all
// events sorted by timestamp so they can feed WindowedDetector::Ingest
// directly.
#ifndef ENSEMFDET_DATAGEN_TRANSACTION_STREAM_H_
#define ENSEMFDET_DATAGEN_TRANSACTION_STREAM_H_

#include <vector>

#include "common/status.h"
#include "datagen/generator.h"
#include "ingest/ingest_batch.h"
#include "stream/windowed_detector.h"

namespace ensemfdet {

struct StreamTimelineConfig {
  /// Stream horizon: background timestamps are uniform over [0, horizon).
  int64_t horizon = 86400;
  /// Length of each fraud group's burst window.
  int64_t burst_duration = 1800;
  /// Bursts are centred at evenly spaced points of the horizon, group g
  /// at (g + 1) / (#groups + 1) · horizon.
  uint64_t seed = 99;
};

/// Assigns a timestamp to every edge of `dataset.graph`: edges incident to
/// fraud-group users get timestamps inside their group's burst, everything
/// else is uniform background. Returns the events sorted by timestamp
/// (stable on ties), ready for WindowedDetector.
Result<std::vector<Transaction>> BuildTransactionStream(
    const Dataset& dataset, const StreamTimelineConfig& config);

/// Chops a timestamp-sorted event log into IngestBatches of at most
/// `batch_events` transactions each (the last batch may be smaller) —
/// the shape the ingest subsystem and the service streaming sessions
/// consume. Order is preserved. InvalidArgument on batch_events < 1.
Result<std::vector<IngestBatch>> SliceIntoBatches(
    const std::vector<Transaction>& events, int64_t batch_events);

}  // namespace ensemfdet

#endif  // ENSEMFDET_DATAGEN_TRANSACTION_STREAM_H_
