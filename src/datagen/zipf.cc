#include "datagen/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ensemfdet {

ZipfSampler::ZipfSampler(int64_t n, double exponent) : exponent_(exponent) {
  ENSEMFDET_CHECK(n >= 1) << "Zipf support must be nonempty";
  ENSEMFDET_CHECK(exponent >= 0.0);
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r + 1), -exponent);
    cdf_[static_cast<size_t>(r)] = total;
  }
  const double inv_total = 1.0 / total;
  for (double& c : cdf_) c *= inv_total;
  cdf_.back() = 1.0;  // guard against rounding leaving the tail unreachable
}

int64_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int64_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(int64_t rank) const {
  ENSEMFDET_CHECK(rank >= 0 && rank < n());
  const size_t r = static_cast<size_t>(rank);
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace ensemfdet
