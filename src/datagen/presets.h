// Dataset presets mirroring the paper's Table I at a configurable scale.
//
// The three JD.com datasets are proprietary; these presets reproduce their
// published statistics — node counts, edge counts, fraud-PIN counts, and
// the user/merchant balance that drives Fig 5's sampling-side analysis —
// scaled by `scale` (1.0 = paper-sized). Group structure ("multiple groups
// of fraudsters in the same period", §III-A) is chosen so FDET's detected
// block count lands in the paper's "few to few tens", with densities
// declining across groups so the Δ²φ elbow of Fig 1 exists.
//
//   Table I               PIN        fraud PIN   merchant    edge
//   Dataset #1            454,925    24,247      226,585     1,023,846
//   Dataset #2            2,194,325  16,035      120,867     2,790,517
//   Dataset #3            4,332,696  101,702     556,634     7,997,696
#ifndef ENSEMFDET_DATAGEN_PRESETS_H_
#define ENSEMFDET_DATAGEN_PRESETS_H_

#include <string>
#include <vector>

#include "datagen/generator.h"

namespace ensemfdet {

enum class JdPreset { kDataset1, kDataset2, kDataset3 };

/// "dataset1" / "dataset2" / "dataset3".
const char* JdPresetName(JdPreset preset);

/// All three presets, in Table I order.
std::vector<JdPreset> AllJdPresets();

/// Builds the generator config for `preset` at `scale` ∈ (0, 1]. Node/edge
/// budgets scale linearly; fraud group count stays fixed while group sizes
/// scale, with floors so tiny scales remain well-formed. `seed` controls
/// all randomness.
DataGenConfig MakeJdPresetConfig(JdPreset preset, double scale,
                                 uint64_t seed);

/// Convenience: generate the preset dataset directly.
Result<Dataset> GenerateJdPreset(JdPreset preset, double scale,
                                 uint64_t seed);

}  // namespace ensemfdet

#endif  // ENSEMFDET_DATAGEN_PRESETS_H_
