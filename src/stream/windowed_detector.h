// Sliding-window streaming detection — operationalizing the paper's
// motivation that "it is the intent of the companies to detect and prevent
// fraud as early as possible" (§I) and that promotional campaigns are
// short-lived, so the relevant graph is always a recent time window.
//
// WindowedDetector ingests timestamped transactions, keeps only those
// within `window` of the newest event, and re-runs ENSEMFDET whenever
// `detection_interval` of stream time has elapsed since the last run.
// Each run yields a full EnsemFDetReport over the windowed graph, so the
// T-dial and vote diagnostics work exactly as in batch mode.
//
// Timestamps must be fed non-decreasing (a real ingestion pipeline sorts
// or slightly buffers); out-of-order events fail with InvalidArgument so
// silent miswindowing is impossible.
#ifndef ENSEMFDET_STREAM_WINDOWED_DETECTOR_H_
#define ENSEMFDET_STREAM_WINDOWED_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "common/status.h"
#include "common/thread_pool.h"
#include "ensemble/ensemfdet.h"
#include "graph/bipartite_graph.h"

namespace ensemfdet {

/// One observed purchase event.
struct Transaction {
  int64_t timestamp = 0;  ///< any monotone clock (seconds, ms, ticks)
  UserId user = 0;
  MerchantId merchant = 0;
};

struct WindowedDetectorConfig {
  /// Node universes (ids arriving outside them are rejected).
  int64_t num_users = 0;
  int64_t num_merchants = 0;
  /// Window length in timestamp units; events older than
  /// newest - window are evicted.
  int64_t window = 3600;
  /// Re-detect when this much stream time passed since the last detection.
  int64_t detection_interval = 600;
  /// Ensemble configuration used for every detection run.
  EnsemFDetConfig ensemble;
};

class WindowedDetector {
 public:
  explicit WindowedDetector(WindowedDetectorConfig config,
                            ThreadPool* pool = nullptr);

  /// Feeds one event. Returns a report when this event crossed a
  /// detection boundary (std::nullopt otherwise), or an error Status on
  /// out-of-order timestamps / out-of-range ids.
  Result<std::optional<EnsemFDetReport>> Ingest(const Transaction& tx);

  /// Forces a detection over the current window (e.g. at stream end).
  Result<EnsemFDetReport> DetectNow();

  /// Events currently inside the window.
  int64_t window_size() const {
    return static_cast<int64_t>(window_.size());
  }
  /// Timestamp of the newest ingested event (INT64_MIN before any).
  int64_t newest_timestamp() const { return newest_; }

 private:
  void EvictExpired();
  Result<BipartiteGraph> BuildWindowGraph() const;

  WindowedDetectorConfig config_;
  ThreadPool* pool_;
  std::deque<Transaction> window_;
  int64_t newest_;
  int64_t last_detection_;
  uint64_t detection_count_ = 0;  // salts the ensemble seed per run
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_STREAM_WINDOWED_DETECTOR_H_
