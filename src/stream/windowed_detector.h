// Sliding-window streaming detection — operationalizing the paper's
// motivation that "it is the intent of the companies to detect and prevent
// fraud as early as possible" (§I) and that promotional campaigns are
// short-lived, so the relevant graph is always a recent time window.
//
// WindowedDetector ingests timestamped transactions, keeps only those
// within `window` of the newest event, and re-runs ENSEMFDET whenever
// `detection_interval` of stream time has elapsed since the last run.
// Each run yields a full EnsemFDetReport over the windowed graph, so the
// T-dial and vote diagnostics work exactly as in batch mode.
//
// Since the incremental-ingest rewire (DESIGN.md §"Incremental ingest"),
// the detector no longer rebuilds the window graph per run: events feed a
// DynamicGraphStore (base CSR + delta-log, O(|delta|) snapshots) and
// detection runs through the dirty-scoped StreamingDetector, which re-runs
// the ensemble only on connected components the window slide actually
// touched and replays clean components' votes from its cache — bit-exact
// against a full-window rerun. Consequently every run's randomness is
// *content-derived* (per-component seeds hashed from the component
// fingerprint), so an unchanged window re-detects identically instead of
// drawing fresh ensemble noise per run index as the pre-rewire detector
// did.
//
// Timestamps must arrive non-decreasing up to the configured
// `max_out_of_order` slack: an event may run at most that far behind the
// newest timestamp seen, and is held in a small reorder buffer until the
// stream has advanced past it (watermark = newest − slack). The default
// slack of 0 preserves the original contract — any regression fails with
// FailedPrecondition so silent miswindowing is impossible.
#ifndef ENSEMFDET_STREAM_WINDOWED_DETECTOR_H_
#define ENSEMFDET_STREAM_WINDOWED_DETECTOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "ensemble/ensemfdet.h"
#include "ingest/dynamic_graph_store.h"
#include "ingest/graph_version.h"
#include "ingest/ingest_batch.h"  // re-exports Transaction for callers
#include "ingest/streaming_detector.h"

namespace ensemfdet {

struct WindowedDetectorConfig {
  /// Node universes (ids arriving outside them are rejected).
  int64_t num_users = 0;
  int64_t num_merchants = 0;
  /// Window length in timestamp units; events older than
  /// newest - window are evicted.
  int64_t window = 3600;
  /// Re-detect when this much stream time passed since the last detection.
  int64_t detection_interval = 600;
  /// Ensemble configuration used for every detection run.
  EnsemFDetConfig ensemble;

  /// Reorder slack: an event may arrive up to this many timestamp units
  /// behind the newest event seen (it waits in a reorder buffer until the
  /// watermark passes it). 0 = require non-decreasing timestamps, the
  /// original behavior.
  int64_t max_out_of_order = 0;
  /// Dirty-scoped detection: components with fewer live edges than this
  /// are skipped (see StreamingDetectorConfig::min_component_edges).
  int64_t min_component_edges = 1;
  /// Component-report cache entries retained for clean-component replay.
  size_t component_cache_capacity = 4096;
  /// Store compaction knobs (DynamicGraphStoreConfig).
  double compaction_factor = 0.25;
  int64_t min_compaction_delta = 1024;
};

class WindowedDetector {
 public:
  explicit WindowedDetector(WindowedDetectorConfig config,
                            ThreadPool* pool = nullptr);

  /// Feeds one event. Returns a report when this event (or an event it
  /// released from the reorder buffer) crossed a detection boundary
  /// (std::nullopt otherwise), or an error Status on out-of-range ids /
  /// timestamps older than the reorder slack allows.
  ///
  /// @note When one Ingest releases several buffered events that cross
  ///       multiple detection boundaries at once (large slack, small
  ///       interval), a single detection runs over the fully released
  ///       window and is returned — boundaries are never silently
  ///       detected-and-discarded, and no ensemble work is wasted on
  ///       intermediate windows no caller could observe.
  Result<std::optional<EnsemFDetReport>> Ingest(const Transaction& tx);

  /// Forces a detection over the current window (e.g. at stream end). Any
  /// reorder-buffered events are flushed into the window first; flushed
  /// events do not advance the periodic detection clock.
  Result<EnsemFDetReport> DetectNow();

  /// Serializes the detector's full resumable state — the store (base +
  /// delta + window events), the detection clock, and any
  /// reorder-buffered events — as a kStoreCheckpoint .efg snapshot.
  /// Read-only (no flush, no detection, no epoch bump): ingesting the
  /// remaining stream after ResumeFromCheckpoint() fires the same
  /// detections with bit-identical reports as the uninterrupted run,
  /// because detection randomness is content-derived (see file comment) —
  /// only the component-replay *cache* starts cold, which changes cost,
  /// never output. Pinned by tests/storage_checkpoint_test.cc.
  /// `wal` (optional) embeds the durable-ingest WAL position — the seq
  /// of the newest WAL record this state reflects — so recovery knows
  /// where log replay must resume.
  Status SaveCheckpoint(const std::string& path,
                        const storage::WalPositionRecord* wal = nullptr);

  /// Adopts a checkpoint into this detector. Must be called before any
  /// Ingest (FailedPrecondition otherwise); the checkpoint's universes
  /// and window length must match this detector's config
  /// (InvalidArgument otherwise). A checkpoint without detector-clock
  /// state (written off a bare DynamicGraphStore) restarts the detection
  /// clock at the next event.
  Status ResumeFromCheckpoint(const std::string& path);

  /// The checkpoint just resumed carried a WAL-position section.
  bool has_resumed_wal_position() const {
    return has_resumed_wal_position_;
  }
  /// That section's last_applied_seq (0 when absent): replay the WAL
  /// strictly after this seq to rebuild the unreplayed suffix.
  uint64_t resumed_wal_position() const { return resumed_wal_position_; }

  /// Events currently inside the window (reorder-buffered events are not
  /// yet counted).
  int64_t window_size() const {
    return store_.has_value() ? store_->window_events() : 0;
  }
  /// Timestamp of the newest event applied to the window (INT64_MIN
  /// before any).
  int64_t newest_timestamp() const {
    return store_.has_value() ? store_->newest_timestamp()
                              : std::numeric_limits<int64_t>::min();
  }
  /// Events waiting in the reorder buffer.
  int64_t reorder_buffered() const {
    return static_cast<int64_t>(reorder_.size());
  }

  /// Diagnostics of the most recent detection (nullopt before any):
  /// dirty/clean component counts, reuse fractions.
  const std::optional<StreamingDetectionStats>& last_stats() const {
    return last_stats_;
  }
  /// The GraphVersion the most recent detection ran over (nullopt before
  /// any) — what a service session registers/publishes.
  const std::optional<GraphVersion>& last_version() const {
    return last_version_;
  }
  /// Clean-component replay cache counters (zeros before first ingest).
  StreamingCacheStats component_cache_stats() const {
    return streaming_.has_value() ? streaming_->cache_stats()
                                  : StreamingCacheStats{};
  }
  /// Store lifetime counters (zeros before first ingest).
  DynamicGraphStoreStats store_stats() const {
    return store_.has_value() ? store_->stats() : DynamicGraphStoreStats{};
  }

 private:
  /// Lazily constructs the store + streaming detector, validating the
  /// configuration (kept out of the constructor so bad configs surface as
  /// Status, matching the original contract).
  Status EnsureInitialized();
  /// Applies one in-order event to the store and advances the detection
  /// clock; sets `*crossed_boundary` when a detection is due. With
  /// `advance_clock` false (DetectNow flushes) only the window advances.
  Status Feed(const Transaction& tx, bool advance_clock,
              bool* crossed_boundary);
  /// Pops every buffered event at or below the watermark into the window,
  /// then runs at most one detection if any released event crossed a
  /// boundary (never when `advance_clock` is false).
  Result<std::optional<EnsemFDetReport>> Release(int64_t watermark,
                                                 bool advance_clock);
  Result<EnsemFDetReport> RunDetection();

  WindowedDetectorConfig config_;
  ThreadPool* pool_;

  std::optional<DynamicGraphStore> store_;
  std::optional<StreamingDetector> streaming_;

  // Reorder buffer: min-heap on (timestamp, arrival sequence) so equal
  // timestamps release in arrival order — deterministic for any input.
  struct Pending {
    int64_t timestamp;
    uint64_t seq;
    Transaction tx;
    bool operator>(const Pending& other) const {
      if (timestamp != other.timestamp) return timestamp > other.timestamp;
      return seq > other.seq;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      reorder_;
  uint64_t next_seq_ = 0;
  int64_t max_seen_;

  int64_t last_detection_;
  std::optional<StreamingDetectionStats> last_stats_;
  std::optional<GraphVersion> last_version_;
  bool has_resumed_wal_position_ = false;
  uint64_t resumed_wal_position_ = 0;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_STREAM_WINDOWED_DETECTOR_H_
