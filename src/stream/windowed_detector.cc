#include "stream/windowed_detector.h"

#include <string>
#include <utility>

namespace ensemfdet {

WindowedDetector::WindowedDetector(WindowedDetectorConfig config,
                                   ThreadPool* pool)
    : config_(std::move(config)),
      pool_(pool),
      max_seen_(std::numeric_limits<int64_t>::min()),
      last_detection_(std::numeric_limits<int64_t>::min()) {}

Status WindowedDetector::EnsureInitialized() {
  if (store_.has_value()) return Status::OK();
  if (config_.window <= 0 || config_.detection_interval <= 0) {
    return Status::InvalidArgument(
        "window and detection_interval must be positive");
  }
  if (config_.max_out_of_order < 0) {
    return Status::InvalidArgument("max_out_of_order must be >= 0");
  }
  DynamicGraphStoreConfig store_config;
  store_config.num_users = config_.num_users;
  store_config.num_merchants = config_.num_merchants;
  store_config.window = config_.window;
  store_config.compaction_factor = config_.compaction_factor;
  store_config.min_compaction_delta = config_.min_compaction_delta;
  ENSEMFDET_ASSIGN_OR_RETURN(DynamicGraphStore store,
                             DynamicGraphStore::Create(store_config));

  StreamingDetectorConfig streaming_config;
  streaming_config.ensemble = config_.ensemble;
  streaming_config.min_component_edges = config_.min_component_edges;
  streaming_config.component_cache_capacity =
      config_.component_cache_capacity;
  ENSEMFDET_ASSIGN_OR_RETURN(StreamingDetector streaming,
                             StreamingDetector::Create(streaming_config));

  store_.emplace(std::move(store));
  streaming_.emplace(std::move(streaming));
  return Status::OK();
}

Result<std::optional<EnsemFDetReport>> WindowedDetector::Ingest(
    const Transaction& tx) {
  ENSEMFDET_RETURN_NOT_OK(EnsureInitialized());
  if (tx.user >= config_.num_users) {
    return Status::InvalidArgument("user id " + std::to_string(tx.user) +
                                   " outside configured universe");
  }
  if (tx.merchant >= config_.num_merchants) {
    return Status::InvalidArgument(
        "merchant id " + std::to_string(tx.merchant) +
        " outside configured universe");
  }
  // Watermark check against the slack (slack 0 ⇒ strict non-decreasing,
  // the original contract).
  if (max_seen_ != std::numeric_limits<int64_t>::min() &&
      tx.timestamp < max_seen_ - config_.max_out_of_order) {
    return Status::FailedPrecondition(
        "out-of-order timestamp " + std::to_string(tx.timestamp) +
        " after " + std::to_string(max_seen_) + " (slack " +
        std::to_string(config_.max_out_of_order) + ")");
  }
  reorder_.push({tx.timestamp, next_seq_++, tx});
  if (tx.timestamp > max_seen_) max_seen_ = tx.timestamp;
  return Release(max_seen_ - config_.max_out_of_order,
                 /*advance_clock=*/true);
}

Result<std::optional<EnsemFDetReport>> WindowedDetector::Release(
    int64_t watermark, bool advance_clock) {
  // Apply every due event first, then detect at most once: a release
  // burst that crosses several boundaries (large slack, small interval)
  // yields one detection over the fully advanced window instead of
  // computing intermediate reports nobody could observe.
  bool crossed = false;
  while (!reorder_.empty() && reorder_.top().timestamp <= watermark) {
    const Transaction tx = reorder_.top().tx;
    reorder_.pop();
    ENSEMFDET_RETURN_NOT_OK(Feed(tx, advance_clock, &crossed));
  }
  if (!crossed) return std::optional<EnsemFDetReport>(std::nullopt);
  ENSEMFDET_ASSIGN_OR_RETURN(EnsemFDetReport report, RunDetection());
  return std::optional<EnsemFDetReport>(std::move(report));
}

Status WindowedDetector::Feed(const Transaction& tx, bool advance_clock,
                              bool* crossed_boundary) {
  IngestBatch batch;
  batch.transactions.push_back(tx);
  ENSEMFDET_ASSIGN_OR_RETURN(IngestStats stats, store_->Apply(batch));
  (void)stats;

  if (!advance_clock) {
    // DetectNow flush: the window advances but the periodic clock is not
    // consulted (DetectNow itself produces the report).
    return Status::OK();
  }
  if (last_detection_ == std::numeric_limits<int64_t>::min()) {
    // The stream's clock starts at the first event; first detection fires
    // one full interval later.
    last_detection_ = tx.timestamp;
    return Status::OK();
  }
  if (tx.timestamp - last_detection_ < config_.detection_interval) {
    return Status::OK();
  }
  last_detection_ = tx.timestamp;
  *crossed_boundary = true;
  return Status::OK();
}

Result<EnsemFDetReport> WindowedDetector::RunDetection() {
  GraphVersion version = store_->Publish();
  ENSEMFDET_ASSIGN_OR_RETURN(StreamingReport streamed,
                             streaming_->Detect(version, pool_));
  last_stats_ = streamed.stats;
  last_version_ = std::move(version);
  return std::move(streamed.report);
}

Status WindowedDetector::SaveCheckpoint(
    const std::string& path, const storage::WalPositionRecord* wal) {
  ENSEMFDET_RETURN_NOT_OK(EnsureInitialized());
  storage::DetectorClockRecord clock;
  clock.max_seen = max_seen_;
  clock.last_detection = last_detection_;
  clock.next_seq = next_seq_;
  clock.detection_interval = config_.detection_interval;
  clock.max_out_of_order = config_.max_out_of_order;
  // priority_queue hides its container; drain a copy to enumerate the
  // buffered events (order is irrelevant — seq numbers restore it).
  std::vector<storage::ReorderEventRecord> reorder;
  reorder.reserve(reorder_.size());
  auto pending = reorder_;
  while (!pending.empty()) {
    const Pending& p = pending.top();
    reorder.push_back({p.seq, p.tx.timestamp, p.tx.user, p.tx.merchant});
    pending.pop();
  }
  return store_->SaveCheckpoint(path, &clock, reorder, wal);
}

Status WindowedDetector::ResumeFromCheckpoint(const std::string& path) {
  if (store_.has_value()) {
    return Status::FailedPrecondition(
        "ResumeFromCheckpoint must run before any event is ingested");
  }
  ENSEMFDET_ASSIGN_OR_RETURN(storage::StoreCheckpointParts parts,
                             storage::ReadStoreCheckpoint(path));
  if (parts.state.cfg_num_users != config_.num_users ||
      parts.state.cfg_num_merchants != config_.num_merchants ||
      parts.state.cfg_window != config_.window) {
    return Status::InvalidArgument(
        "checkpoint " + path + " was written for universes " +
        std::to_string(parts.state.cfg_num_users) + "x" +
        std::to_string(parts.state.cfg_num_merchants) + ", window " +
        std::to_string(parts.state.cfg_window) +
        "; this detector is configured differently");
  }
  // The clock-shaping knobs must match too, or the resumed run's
  // detection boundaries silently diverge from the uninterrupted run.
  if (parts.has_clock &&
      (parts.clock.detection_interval != config_.detection_interval ||
       parts.clock.max_out_of_order != config_.max_out_of_order)) {
    return Status::InvalidArgument(
        "checkpoint " + path + " was written with interval " +
        std::to_string(parts.clock.detection_interval) +
        " and reorder slack " +
        std::to_string(parts.clock.max_out_of_order) +
        "; resuming under different clock settings would break the "
        "bit-identical-resume contract");
  }
  const bool has_clock = parts.has_clock;
  const storage::DetectorClockRecord clock = parts.clock;
  const std::vector<storage::ReorderEventRecord> reorder =
      std::move(parts.reorder);
  const bool has_wal_position = parts.has_wal_position;
  const uint64_t wal_position = parts.wal_position.last_applied_seq;

  // Restore the store BEFORE EnsureInitialized touches any member state:
  // a checkpoint that fails the cross-section/fingerprint gates must
  // leave this detector exactly as it was, so a retry with a good backup
  // checkpoint still passes the not-yet-used guard above.
  ENSEMFDET_ASSIGN_OR_RETURN(DynamicGraphStore restored,
                             DynamicGraphStore::FromCheckpoint(
                                 std::move(parts)));
  ENSEMFDET_RETURN_NOT_OK(EnsureInitialized());
  store_.emplace(std::move(restored));
  if (has_clock) {
    max_seen_ = clock.max_seen;
    last_detection_ = clock.last_detection;
    next_seq_ = clock.next_seq;
    for (const storage::ReorderEventRecord& event : reorder) {
      reorder_.push({event.timestamp, event.seq,
                     {event.timestamp, event.user, event.merchant}});
    }
  } else {
    // Bare store checkpoint: the window resumes, the periodic clock
    // restarts at the next event (first detection one interval later).
    max_seen_ = store_->newest_timestamp();
  }
  has_resumed_wal_position_ = has_wal_position;
  resumed_wal_position_ = wal_position;
  return Status::OK();
}

Result<EnsemFDetReport> WindowedDetector::DetectNow() {
  ENSEMFDET_RETURN_NOT_OK(EnsureInitialized());
  // Flush the reorder buffer: everything buffered is in-window data and a
  // forced detection should see it.
  ENSEMFDET_ASSIGN_OR_RETURN(
      std::optional<EnsemFDetReport> ignored,
      Release(std::numeric_limits<int64_t>::max(), /*advance_clock=*/false));
  (void)ignored;
  return RunDetection();
}

}  // namespace ensemfdet
