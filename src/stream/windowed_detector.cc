#include "stream/windowed_detector.h"

#include <limits>
#include <string>

#include "graph/graph_builder.h"

namespace ensemfdet {

WindowedDetector::WindowedDetector(WindowedDetectorConfig config,
                                   ThreadPool* pool)
    : config_(std::move(config)),
      pool_(pool),
      newest_(std::numeric_limits<int64_t>::min()),
      last_detection_(std::numeric_limits<int64_t>::min()) {}

void WindowedDetector::EvictExpired() {
  const int64_t cutoff = newest_ - config_.window;
  while (!window_.empty() && window_.front().timestamp < cutoff) {
    window_.pop_front();
  }
}

Result<BipartiteGraph> WindowedDetector::BuildWindowGraph() const {
  GraphBuilder builder(config_.num_users, config_.num_merchants);
  builder.Reserve(static_cast<int64_t>(window_.size()));
  for (const Transaction& tx : window_) {
    builder.AddEdge(tx.user, tx.merchant);
  }
  return builder.Build(DuplicatePolicy::kKeepFirst);
}

Result<std::optional<EnsemFDetReport>> WindowedDetector::Ingest(
    const Transaction& tx) {
  if (config_.window <= 0 || config_.detection_interval <= 0) {
    return Status::InvalidArgument(
        "window and detection_interval must be positive");
  }
  if (tx.user >= config_.num_users) {
    return Status::InvalidArgument("user id " + std::to_string(tx.user) +
                                   " outside configured universe");
  }
  if (tx.merchant >= config_.num_merchants) {
    return Status::InvalidArgument(
        "merchant id " + std::to_string(tx.merchant) +
        " outside configured universe");
  }
  if (newest_ != std::numeric_limits<int64_t>::min() &&
      tx.timestamp < newest_) {
    return Status::FailedPrecondition(
        "out-of-order timestamp " + std::to_string(tx.timestamp) +
        " after " + std::to_string(newest_));
  }

  newest_ = tx.timestamp;
  window_.push_back(tx);
  EvictExpired();

  if (last_detection_ == std::numeric_limits<int64_t>::min()) {
    // The stream's clock starts at the first event; first detection fires
    // one full interval later.
    last_detection_ = tx.timestamp;
    return std::optional<EnsemFDetReport>(std::nullopt);
  }
  if (tx.timestamp - last_detection_ < config_.detection_interval) {
    return std::optional<EnsemFDetReport>(std::nullopt);
  }
  last_detection_ = tx.timestamp;
  ENSEMFDET_ASSIGN_OR_RETURN(EnsemFDetReport report, DetectNow());
  return std::optional<EnsemFDetReport>(std::move(report));
}

Result<EnsemFDetReport> WindowedDetector::DetectNow() {
  ENSEMFDET_ASSIGN_OR_RETURN(BipartiteGraph graph, BuildWindowGraph());
  EnsemFDetConfig cfg = config_.ensemble;
  // Each run draws fresh ensemble randomness; deterministic per run index.
  cfg.seed = config_.ensemble.seed + (detection_count_++) * 0x9e3779b9ULL;
  return EnsemFDet(cfg).Run(graph, pool_);
}

}  // namespace ensemfdet
