// FBOX baseline (Shah et al., ICDM 2014 [31]): SVD reconstruction-error
// fraud detection from the adversarial perspective.
//
// Insight: attacks small enough to evade the top-k spectral components are
// nearly orthogonal to them, so a fraudulent node's adjacency row projects
// poorly onto the top-k singular subspace. For user i with degree d_i and
// projected-row norm r_i = ‖P_k(a_i)‖₂ = sqrt(Σ_t (σ_t·U[i,t])²), FBOX
// flags nodes whose r_i is small relative to what their degree warrants.
// We expose the continuous suspiciousness score
//
//     score_i = sqrt(d_i) / (r_i + ε)
//
// (degree-0 nodes score 0) plus the raw reconstruction norms; the paper's
// thresholded variant is the top of this ranking.
#ifndef ENSEMFDET_BASELINES_FBOX_H_
#define ENSEMFDET_BASELINES_FBOX_H_

#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"
#include "linalg/svd.h"

namespace ensemfdet {

struct FboxConfig {
  /// Rank of the spectral subspace the attack must evade.
  int num_components = 25;
  SvdOptions svd;
  /// Numerical floor added to reconstruction norms.
  double epsilon = 1e-9;
};

struct FboxResult {
  /// Suspiciousness per user (higher = more suspicious).
  std::vector<double> user_scores;
  /// r_i = ‖P_k(a_i)‖₂ per user (diagnostics).
  std::vector<double> reconstruction_norms;
  std::vector<double> singular_values;
};

/// Runs FBOX on the graph's adjacency matrix. Fails with InvalidArgument on
/// an edgeless graph or num_components < 1.
Result<FboxResult> RunFbox(const BipartiteGraph& graph,
                           const FboxConfig& config);

}  // namespace ensemfdet

#endif  // ENSEMFDET_BASELINES_FBOX_H_
