#include "baselines/hits.h"

#include <cmath>

#include "linalg/dense.h"

namespace ensemfdet {

Result<HitsResult> RunHits(const BipartiteGraph& graph,
                           const HitsConfig& config) {
  if (config.iterations < 1) {
    return Status::InvalidArgument("HITS needs iterations >= 1");
  }
  if (graph.num_edges() == 0) {
    return Status::InvalidArgument("HITS needs a graph with edges");
  }

  const int64_t num_users = graph.num_users();
  const int64_t num_merchants = graph.num_merchants();
  HitsResult result;
  result.user_hub_scores.assign(static_cast<size_t>(num_users), 1.0);
  result.merchant_authority_scores.assign(
      static_cast<size_t>(num_merchants), 0.0);

  std::vector<double> previous_hubs = result.user_hub_scores;
  for (int it = 0; it < config.iterations; ++it) {
    // authority(v) = Σ_{u ~ v} w_uv · hub(u)
    for (int64_t v = 0; v < num_merchants; ++v) {
      double sum = 0.0;
      for (EdgeId e :
           graph.merchant_edges(static_cast<MerchantId>(v))) {
        sum += graph.edge_weight(e) * result.user_hub_scores[graph.edge(e).user];
      }
      result.merchant_authority_scores[static_cast<size_t>(v)] = sum;
    }
    double authority_norm = Norm2(result.merchant_authority_scores);
    if (authority_norm > 0.0) {
      Scale(1.0 / authority_norm, result.merchant_authority_scores);
    }

    // hub(u) = Σ_{v ~ u} w_uv · authority(v)
    for (int64_t u = 0; u < num_users; ++u) {
      double sum = 0.0;
      for (EdgeId e : graph.user_edges(static_cast<UserId>(u))) {
        sum += graph.edge_weight(e) *
               result.merchant_authority_scores[graph.edge(e).merchant];
      }
      result.user_hub_scores[static_cast<size_t>(u)] = sum;
    }
    double hub_norm = Norm2(result.user_hub_scores);
    if (hub_norm > 0.0) Scale(1.0 / hub_norm, result.user_hub_scores);

    result.iterations_run = it + 1;
    double delta = 0.0;
    for (int64_t u = 0; u < num_users; ++u) {
      delta += std::abs(result.user_hub_scores[static_cast<size_t>(u)] -
                        previous_hubs[static_cast<size_t>(u)]);
    }
    if (delta < config.tolerance) break;
    previous_hubs = result.user_hub_scores;
  }
  return result;
}

}  // namespace ensemfdet
