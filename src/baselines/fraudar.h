// FRAUDAR baseline (Hooi et al., KDD 2016 [13]) — the strongest heuristic
// comparator in the paper's evaluation (§V-B2, Figs 3-4, Table III).
//
// FRAUDAR greedily peels the single densest block under the same
// log-weighted density score φ; the "K blocks" variant used in the paper's
// experiments (K fixed at 30) repeats detection after removing each found
// block's edges. Unlike FDET it has no truncation strategy — the number of
// blocks is a manual parameter — and its detections are all-or-nothing
// blocks, which is what produces the discrete zigzag operating points the
// paper criticizes (reproduce with eval::BlockSweep).
//
// The greedy engine is shared with FDET (detect/greedy_peeler.h): the
// algorithms coincide per peel; ENSEMFDET's contribution is what is
// wrapped around the peel (sampling, ensemble voting, auto-truncation).
#ifndef ENSEMFDET_BASELINES_FRAUDAR_H_
#define ENSEMFDET_BASELINES_FRAUDAR_H_

#include <vector>

#include "common/status.h"
#include "detect/fdet.h"
#include "graph/bipartite_graph.h"

namespace ensemfdet {

struct FraudarConfig {
  DensityConfig density;
  /// Number of dense blocks to extract (the paper fixes 30).
  int num_blocks = 30;
};

struct FraudarResult {
  /// Detected blocks in detection order (descending φ), possibly fewer
  /// than requested if the graph runs out of edges.
  std::vector<DetectedBlock> blocks;

  /// Per-block user lists in detection order, ready for eval::BlockSweep.
  std::vector<std::vector<UserId>> UserBlocks() const;
  /// Union of all block users.
  std::vector<UserId> DetectedUsers() const;
};

/// Runs FRAUDAR on the full graph (no sampling, no truncation).
Result<FraudarResult> RunFraudar(const BipartiteGraph& graph,
                                 const FraudarConfig& config);

/// CSR overload: identical results over an already-converted graph (the
/// service layer passes the snapshot's shared CsrGraph so baseline jobs
/// skip the per-job conversion).
Result<FraudarResult> RunFraudar(const CsrGraph& graph,
                                 const FraudarConfig& config);

}  // namespace ensemfdet

#endif  // ENSEMFDET_BASELINES_FRAUDAR_H_
