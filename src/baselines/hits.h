// HITS-style baseline (Kleinberg [19]) — the related-work family the paper
// cites for propagation-based fraud detection ("Several methods have used
// HITS-like ideas to detect fraud in graphs").
//
// Hub/authority power iteration on the bipartite adjacency: a user's hub
// score aggregates its merchants' authority; a merchant's authority
// aggregates its users' hub scores. Lockstep groups reinforce each other
// and float to the top of the hub ranking, so hub scores serve as user
// suspiciousness (the CatchSync-style reading the paper's §II describes).
// Included as an extension baseline beyond the paper's evaluated trio.
#ifndef ENSEMFDET_BASELINES_HITS_H_
#define ENSEMFDET_BASELINES_HITS_H_

#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace ensemfdet {

struct HitsConfig {
  /// Power-iteration rounds; convergence is geometric in the spectral gap.
  int iterations = 50;
  /// Early-exit when the L1 change of the hub vector drops below this.
  double tolerance = 1e-10;
};

struct HitsResult {
  /// Hub score per user (L2-normalized); the suspiciousness ranking.
  std::vector<double> user_hub_scores;
  /// Authority score per merchant (L2-normalized).
  std::vector<double> merchant_authority_scores;
  /// Iterations actually run.
  int iterations_run = 0;
};

/// Runs HITS on the graph. Fails with InvalidArgument on an edgeless graph
/// or non-positive iteration budget.
Result<HitsResult> RunHits(const BipartiteGraph& graph,
                           const HitsConfig& config = {});

}  // namespace ensemfdet

#endif  // ENSEMFDET_BASELINES_HITS_H_
