#include "baselines/fraudar.h"

#include <algorithm>

namespace ensemfdet {

std::vector<std::vector<UserId>> FraudarResult::UserBlocks() const {
  std::vector<std::vector<UserId>> out;
  out.reserve(blocks.size());
  for (const DetectedBlock& b : blocks) out.push_back(b.users);
  return out;
}

std::vector<UserId> FraudarResult::DetectedUsers() const {
  std::vector<UserId> out;
  for (const DetectedBlock& b : blocks) {
    out.insert(out.end(), b.users.begin(), b.users.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

FdetConfig FraudarFdetConfig(const FraudarConfig& config) {
  FdetConfig fdet;
  fdet.density = config.density;
  fdet.policy = TruncationPolicy::kFixedK;
  fdet.fixed_k = config.num_blocks;
  fdet.max_blocks = config.num_blocks;
  return fdet;
}

}  // namespace

Result<FraudarResult> RunFraudar(const BipartiteGraph& graph,
                                 const FraudarConfig& config) {
  ENSEMFDET_ASSIGN_OR_RETURN(FdetResult result,
                             RunFdet(graph, FraudarFdetConfig(config)));
  FraudarResult out;
  out.blocks = std::move(result.blocks);
  return out;
}

Result<FraudarResult> RunFraudar(const CsrGraph& graph,
                                 const FraudarConfig& config) {
  ENSEMFDET_ASSIGN_OR_RETURN(FdetResult result,
                             RunFdetCsr(graph, FraudarFdetConfig(config)));
  FraudarResult out;
  out.blocks = std::move(result.blocks);
  return out;
}

}  // namespace ensemfdet
