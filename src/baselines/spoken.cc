#include "baselines/spoken.h"

#include <algorithm>
#include <cmath>

#include "linalg/sparse_matrix.h"

namespace ensemfdet {

Result<SpokenResult> RunSpoken(const BipartiteGraph& graph,
                               const SpokenConfig& config) {
  if (config.num_components < 1) {
    return Status::InvalidArgument("num_components must be >= 1");
  }
  if (graph.num_edges() == 0) {
    return Status::InvalidArgument("SPOKEN needs a graph with edges");
  }

  const CsrMatrix adjacency = AdjacencyMatrix(graph);
  ENSEMFDET_ASSIGN_OR_RETURN(
      TruncatedSvd svd,
      ComputeTruncatedSvd(adjacency, config.num_components, config.svd));

  SpokenResult result;
  result.singular_values = svd.sigma;
  result.user_scores.assign(static_cast<size_t>(graph.num_users()), 0.0);
  result.merchant_scores.assign(static_cast<size_t>(graph.num_merchants()),
                                0.0);
  for (int t = 0; t < svd.k(); ++t) {
    auto u_col = svd.u.col(t);
    for (size_t i = 0; i < u_col.size(); ++i) {
      result.user_scores[i] = std::max(result.user_scores[i],
                                       std::abs(u_col[i]));
    }
    auto v_col = svd.v.col(t);
    for (size_t j = 0; j < v_col.size(); ++j) {
      result.merchant_scores[j] = std::max(result.merchant_scores[j],
                                           std::abs(v_col[j]));
    }
  }
  return result;
}

}  // namespace ensemfdet
