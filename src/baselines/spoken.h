// SPOKEN baseline (Prakash et al., PAKDD 2010 [30]): spectral fraud
// detection from the "eigenspokes" pattern.
//
// On adjacency matrices with community/lockstep structure, the top singular
// vectors concentrate their mass on the members of dense blocks ("spokes"
// in EE-plots of singular-vector pairs). SPOKEN therefore scores each node
// by its largest-magnitude coordinate across the top-k singular vectors
// (k = 25 components, as the paper configures it); nodes living on a spoke
// get large scores and are flagged first. The score ranking feeds
// eval::ScoreSweep for PR curves.
//
// Built on this library's own truncated SVD (linalg/svd.h) — spectral
// relaxation of the dense-subgraph partitioning problem, which is exactly
// why it is fast but can lose precision vs the heuristic methods (§I).
#ifndef ENSEMFDET_BASELINES_SPOKEN_H_
#define ENSEMFDET_BASELINES_SPOKEN_H_

#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"
#include "linalg/svd.h"

namespace ensemfdet {

struct SpokenConfig {
  /// Number of SVD components ("set to 25 as same as the paper described").
  int num_components = 25;
  SvdOptions svd;
};

struct SpokenResult {
  /// Suspiciousness per user: max_t |U[i,t]| over the top components.
  std::vector<double> user_scores;
  /// Suspiciousness per merchant: max_t |V[j,t]|.
  std::vector<double> merchant_scores;
  /// Computed singular values (diagnostics).
  std::vector<double> singular_values;
};

/// Runs SPOKEN on the graph's adjacency matrix. Fails with InvalidArgument
/// on an edgeless graph or num_components < 1.
Result<SpokenResult> RunSpoken(const BipartiteGraph& graph,
                               const SpokenConfig& config);

}  // namespace ensemfdet

#endif  // ENSEMFDET_BASELINES_SPOKEN_H_
