#include "baselines/fbox.h"

#include <cmath>

#include "linalg/sparse_matrix.h"

namespace ensemfdet {

Result<FboxResult> RunFbox(const BipartiteGraph& graph,
                           const FboxConfig& config) {
  if (config.num_components < 1) {
    return Status::InvalidArgument("num_components must be >= 1");
  }
  if (graph.num_edges() == 0) {
    return Status::InvalidArgument("FBOX needs a graph with edges");
  }

  const CsrMatrix adjacency = AdjacencyMatrix(graph);
  ENSEMFDET_ASSIGN_OR_RETURN(
      TruncatedSvd svd,
      ComputeTruncatedSvd(adjacency, config.num_components, config.svd));

  const int64_t num_users = graph.num_users();
  FboxResult result;
  result.singular_values = svd.sigma;
  result.reconstruction_norms.assign(static_cast<size_t>(num_users), 0.0);
  result.user_scores.assign(static_cast<size_t>(num_users), 0.0);

  // r_i² = Σ_t (σ_t · U[i,t])² — the squared norm of row i's projection
  // onto the top-k right singular subspace.
  for (int t = 0; t < svd.k(); ++t) {
    const double sigma = svd.sigma[static_cast<size_t>(t)];
    auto u_col = svd.u.col(t);
    for (int64_t i = 0; i < num_users; ++i) {
      const double coord = sigma * u_col[static_cast<size_t>(i)];
      result.reconstruction_norms[static_cast<size_t>(i)] += coord * coord;
    }
  }
  for (int64_t i = 0; i < num_users; ++i) {
    result.reconstruction_norms[static_cast<size_t>(i)] =
        std::sqrt(result.reconstruction_norms[static_cast<size_t>(i)]);
  }

  for (int64_t i = 0; i < num_users; ++i) {
    const double degree = graph.user_weighted_degree(static_cast<UserId>(i));
    if (degree <= 0.0) continue;  // isolated users cannot be suspicious
    result.user_scores[static_cast<size_t>(i)] =
        std::sqrt(degree) /
        (result.reconstruction_norms[static_cast<size_t>(i)] +
         config.epsilon);
  }
  return result;
}

}  // namespace ensemfdet
