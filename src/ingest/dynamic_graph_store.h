// DynamicGraphStore: the mutable heart of the incremental ingest
// subsystem. It accepts timestamped edge batches, maintains a sliding
// window over them (eviction by timestamp), and publishes immutable
// epoch-versioned GraphVersion snapshots in O(|delta|) — never O(|window|)
// — by keeping the live edge set as
//
//     base CSR  (frozen at the last compaction)
//   + delta-log (edges added since / base edges evicted since)
//   + per-(user, merchant) multiplicity (duplicate purchases inside the
//     window collapse onto one live edge; the edge dies only when the last
//     occurrence expires).
//
// When the delta-log outgrows `compaction_factor · |base|` (but at least
// `min_compaction_delta`), the next Publish() compacts: the live edge set
// is rebuilt into a fresh CsrGraph, the delta-log resets to empty, and the
// published version is marked `compacted()`. Versions published earlier
// keep their own frozen base/delta and stay bit-stable forever.
//
// The store also tracks the *dirty frontier*: every node whose incident
// live-edge set changed since the last Publish() is reported on the next
// version (`touched_users` / `touched_merchants`) — what the dirty-scoped
// streaming detector scores its component-reuse statistics against.
//
// Thread-safety: NOT thread-safe; callers (WindowedDetector, the service's
// streaming sessions) serialize access per store. Published GraphVersions
// are immutable and freely shared across threads.
#ifndef ENSEMFDET_INGEST_DYNAMIC_GRAPH_STORE_H_
#define ENSEMFDET_INGEST_DYNAMIC_GRAPH_STORE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "graph/csr_graph.h"
#include "ingest/graph_version.h"
#include "ingest/ingest_batch.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_reader.h"

namespace ensemfdet {

struct DynamicGraphStoreConfig {
  /// Node universes (ids arriving outside them are rejected).
  int64_t num_users = 0;
  int64_t num_merchants = 0;
  /// Window length in timestamp units; events older than newest − window
  /// are evicted. ≤ 0 disables eviction (append-only store).
  int64_t window = 0;
  /// Compaction trips when the delta-log exceeds this fraction of the
  /// base's edge count …
  double compaction_factor = 0.25;
  /// … but never before it holds this many entries (tiny bases would
  /// otherwise compact on every publish).
  int64_t min_compaction_delta = 1024;
};

/// Lifetime counters (monotonic; never reset).
struct DynamicGraphStoreStats {
  int64_t events_ingested = 0;
  int64_t events_evicted = 0;
  int64_t edges_added = 0;    ///< structural 0→1 transitions
  int64_t edges_removed = 0;  ///< structural 1→0 transitions
  int64_t publishes = 0;
  int64_t compactions = 0;
};

class DynamicGraphStore {
 public:
  /// Validates the config. InvalidArgument on empty universes, a
  /// non-positive compaction factor, or min_compaction_delta < 1.
  static Result<DynamicGraphStore> Create(DynamicGraphStoreConfig config);

  /// Applies one batch: every transaction is validated (ids in range,
  /// timestamps non-decreasing within the batch and against everything
  /// already applied), appended to the window, and the live edge multiset
  /// updated; expired events are then evicted. On error nothing before the
  /// offending transaction is rolled back — feed through a reorder buffer
  /// (WindowedDetector's `max_out_of_order`) when the source can regress.
  /// O(|batch| + |evicted|) expected.
  Result<IngestStats> Apply(const IngestBatch& batch);

  /// Snapshots the current live edge set as an immutable GraphVersion,
  /// compacting first if the delta threshold tripped. Cost is
  /// O(|delta| log |delta|) (plus the amortized O(|window|) compaction).
  /// Bumps the epoch; clears the dirty frontier.
  GraphVersion Publish();

  /// Serializes the store's complete state — base CSR, delta-log, window
  /// events (the future-eviction clock), dirty frontier, epoch, counters
  /// — as a kStoreCheckpoint .efg snapshot, so FromCheckpoint() resumes
  /// byte-for-byte where this store stands. Read-only: no epoch bump, no
  /// frontier clear, the store is untouched. `clock`/`reorder` piggyback
  /// WindowedDetector state (null/empty for a bare store checkpoint).
  /// O(|window| + |base| + |delta|).
  /// `wal` piggybacks the durable-ingest WAL position the same way
  /// (null when the ingest path is not WAL-backed).
  Status SaveCheckpoint(
      const std::string& path,
      const storage::DetectorClockRecord* clock = nullptr,
      std::span<const storage::ReorderEventRecord> reorder = {},
      const storage::WalPositionRecord* wal = nullptr) const;

  /// Rebuilds a store from deserialized checkpoint parts
  /// (storage::ReadStoreCheckpoint). Re-derives the live multiset from
  /// the window events, cross-checks it against base − dead + adds, and
  /// re-verifies the live-set content fingerprint — an inconsistent or
  /// tampered checkpoint fails with IOError, never corrupts a store.
  static Result<DynamicGraphStore> FromCheckpoint(
      storage::StoreCheckpointParts parts);

  /// Convenience: ReadStoreCheckpoint + FromCheckpoint (detector clock
  /// sections, if present, are ignored — WindowedDetector::
  /// ResumeFromCheckpoint consumes those).
  static Result<DynamicGraphStore> RestoreCheckpoint(
      const std::string& path);

  /// Distinct live (user, merchant) edges in the window.
  int64_t live_edges() const {
    return static_cast<int64_t>(multiplicity_.size());
  }
  /// Transactions currently inside the window (duplicates included).
  int64_t window_events() const {
    return static_cast<int64_t>(window_.size());
  }
  /// Timestamp of the newest applied event (INT64_MIN before any).
  int64_t newest_timestamp() const { return newest_; }
  /// Epoch of the most recently published version (0 before any Publish).
  uint64_t epoch() const { return epoch_; }
  /// Current delta-log size (adds + dead) against the base.
  int64_t pending_delta() const {
    return static_cast<int64_t>(added_.size() + dead_.size());
  }

  const DynamicGraphStoreConfig& config() const { return config_; }
  const DynamicGraphStoreStats& stats() const { return stats_; }

 private:
  explicit DynamicGraphStore(DynamicGraphStoreConfig config);

  static uint64_t PackEdge(UserId u, MerchantId v) {
    return (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
  }

  /// Base EdgeId of (u, v), or -1 when the pair is not a base edge.
  EdgeId FindBaseEdge(UserId u, MerchantId v) const;

  /// The delta-log + dirty frontier in the canonical sorted orders the
  /// GraphVersion invariants (and the snapshot reader) demand. One
  /// producer shared by Publish() and SaveCheckpoint() so the ordering
  /// contract can never diverge between live versions and checkpoints.
  struct SortedDelta {
    std::vector<Edge> adds;              ///< ascending (user, merchant)
    std::vector<Edge> adds_by_merchant;  ///< ascending (merchant, user)
    std::vector<EdgeId> dead;            ///< ascending
    std::vector<UserId> touched_users;   ///< ascending
    std::vector<MerchantId> touched_merchants;  ///< ascending
  };
  SortedDelta BuildSortedDelta() const;

  void AddLiveEdge(UserId u, MerchantId v, IngestStats* stats);
  void EvictExpired(IngestStats* stats);
  void Compact();

  DynamicGraphStoreConfig config_;
  DynamicGraphStoreStats stats_;

  std::deque<Transaction> window_;
  int64_t newest_;
  uint64_t epoch_ = 0;

  /// Live multiset: packed (user, merchant) → occurrences in the window.
  std::unordered_map<uint64_t, int32_t> multiplicity_;

  std::shared_ptr<const CsrGraph> base_;
  /// Live edges absent from base, as packed keys. std::set: packed-key
  /// order IS canonical (user, merchant) order, so Publish() reads the
  /// adds pre-sorted.
  std::set<uint64_t> added_;
  /// Base edges currently dead (evicted); sorted at Publish().
  std::unordered_set<EdgeId> dead_;

  /// Dirty frontier accumulated since the last Publish().
  std::unordered_set<UserId> touched_users_;
  std::unordered_set<MerchantId> touched_merchants_;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_INGEST_DYNAMIC_GRAPH_STORE_H_
