#include "ingest/streaming_detector.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/timer.h"
#include "detect/fdet.h"
#include "ensemble/vote_table.h"
#include "graph/graph_builder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ensemfdet {

namespace {

// Stream-layer instruments. The reuse/clean-edge counters are bumped
// en bloc at the end of Detect() by exactly the amounts reported in
// StreamingDetectionStats, so a registry delta taken across one report
// equals that report's stats — stream-replay's narration reads the
// registry and still prints bit-identical lines.
struct StreamMetrics {
  obs::Counter* reports_total;
  obs::Counter* components_total;
  obs::Counter* components_eligible_total;
  obs::Counter* components_reused_total;
  obs::Counter* components_recomputed_total;
  obs::Counter* components_touched_total;
  obs::Counter* edges_total;
  obs::Counter* edges_recomputed_total;
  obs::Counter* cache_hits_total;
  obs::Counter* cache_misses_total;
  obs::Counter* cache_insertions_total;
  obs::Counter* cache_evictions_total;
  obs::Histogram* detect_seconds;
  obs::Histogram* component_fdet_seconds;
};

StreamMetrics& Metrics() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static StreamMetrics m{
      reg.GetCounter("ensemfdet_stream_reports_total"),
      reg.GetCounter("ensemfdet_stream_components_total"),
      reg.GetCounter("ensemfdet_stream_components_eligible_total"),
      reg.GetCounter("ensemfdet_stream_components_reused_total"),
      reg.GetCounter("ensemfdet_stream_components_recomputed_total"),
      reg.GetCounter("ensemfdet_stream_components_touched_total"),
      reg.GetCounter("ensemfdet_stream_edges_total"),
      reg.GetCounter("ensemfdet_stream_edges_recomputed_total"),
      reg.GetCounter("ensemfdet_stream_cache_hits_total"),
      reg.GetCounter("ensemfdet_stream_cache_misses_total"),
      reg.GetCounter("ensemfdet_stream_cache_insertions_total"),
      reg.GetCounter("ensemfdet_stream_cache_evictions_total"),
      reg.GetHistogram("ensemfdet_stream_detect_seconds"),
      reg.GetHistogram("ensemfdet_stream_component_fdet_seconds"),
  };
  return m;
}

// Content fingerprint of one connected component: its live edges in
// canonical order, *global* ids. Global ids make structurally isomorphic
// components at different node ids fingerprint differently — votes are
// replayed onto specific nodes, so identity matters.
uint64_t ComponentFingerprint(const std::vector<Edge>& edges) {
  static_assert(sizeof(Edge) == 2 * sizeof(uint32_t));
  uint64_t h = HashValue<uint64_t>(0x636f6d70u);  // domain tag "comp"
  h = HashCombine(h, HashValue(static_cast<int64_t>(edges.size())));
  h = HashCombine(h, Hash64(edges.data(), edges.size() * sizeof(Edge)));
  return h;
}

}  // namespace

Result<StreamingDetector> StreamingDetector::Create(
    StreamingDetectorConfig config) {
  if (config.ensemble.num_samples < 1) {
    return Status::InvalidArgument("ensemble num_samples must be >= 1");
  }
  if (!(config.ensemble.ratio > 0.0) || config.ensemble.ratio > 1.0) {
    return Status::InvalidArgument("ensemble ratio must be in (0, 1]");
  }
  if (config.min_component_edges < 1) {
    return Status::InvalidArgument("min_component_edges must be >= 1");
  }
  if (config.component_cache_capacity < 1) {
    return Status::InvalidArgument(
        "component_cache_capacity must be >= 1");
  }
  return StreamingDetector(std::move(config));
}

void StreamingDetector::ResetCache() {
  lru_.clear();
  cache_index_.clear();
}

std::shared_ptr<const StreamingDetector::ComponentEntry>
StreamingDetector::LookupCache(uint64_t fingerprint) {
  auto it = cache_index_.find(fingerprint);
  if (it == cache_index_.end()) {
    ++cache_stats_.misses;
    Metrics().cache_misses_total->Increment();
    return nullptr;
  }
  ++cache_stats_.hits;
  Metrics().cache_hits_total->Increment();
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh
  return it->second->entry;
}

void StreamingDetector::InsertCache(
    uint64_t fingerprint, std::shared_ptr<const ComponentEntry> entry) {
  auto it = cache_index_.find(fingerprint);
  if (it != cache_index_.end()) {
    it->second->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front({fingerprint, std::move(entry)});
  cache_index_[fingerprint] = lru_.begin();
  ++cache_stats_.insertions;
  Metrics().cache_insertions_total->Increment();
  while (lru_.size() > config_.component_cache_capacity) {
    cache_index_.erase(lru_.back().fingerprint);
    lru_.pop_back();
    ++cache_stats_.evictions;
    Metrics().cache_evictions_total->Increment();
  }
}

Result<std::shared_ptr<const StreamingDetector::ComponentEntry>>
StreamingDetector::ComputeComponent(const std::vector<Edge>& edges,
                                    uint64_t fingerprint,
                                    ThreadPool* pool) const {
  // Dense local ids: index into the sorted global node lists. The edges
  // arrive in canonical (user, merchant) order, so the user list is
  // already sorted; the merchant list needs one sort.
  obs::TraceSpan span(Metrics().component_fdet_seconds, "component_fdet");
  std::vector<UserId> users;
  std::vector<MerchantId> merchants;
  users.reserve(edges.size());
  merchants.reserve(edges.size());
  for (const Edge& e : edges) {
    if (users.empty() || users.back() != e.user) users.push_back(e.user);
    merchants.push_back(e.merchant);
  }
  std::sort(merchants.begin(), merchants.end());
  merchants.erase(std::unique(merchants.begin(), merchants.end()),
                  merchants.end());

  GraphBuilder builder(static_cast<int64_t>(users.size()),
                       static_cast<int64_t>(merchants.size()));
  builder.Reserve(static_cast<int64_t>(edges.size()));
  for (const Edge& e : edges) {
    const auto lu = static_cast<UserId>(
        std::lower_bound(users.begin(), users.end(), e.user) -
        users.begin());
    const auto lv = static_cast<MerchantId>(
        std::lower_bound(merchants.begin(), merchants.end(), e.merchant) -
        merchants.begin());
    builder.AddEdge(lu, lv);
  }
  ENSEMFDET_ASSIGN_OR_RETURN(BipartiteGraph graph,
                             builder.Build(DuplicatePolicy::kKeepFirst));
  const CsrGraph csr = CsrGraph::FromBipartite(graph);

  // All randomness is content-derived: same component content + same base
  // seed → same member outputs, whenever/wherever computed. Exploration is
  // fixed-k per component; the elbow applies globally after the merge
  // (RunPartitionedFdet's rule).
  EnsemFDetConfig sub = config_.ensemble;
  sub.seed = HashCombine(config_.ensemble.seed, fingerprint);
  sub.fdet.policy = TruncationPolicy::kFixedK;
  sub.fdet.fixed_k = config_.ensemble.fdet.max_blocks;
  ENSEMFDET_ASSIGN_OR_RETURN(std::vector<EnsembleMemberBlocks> members,
                             EnsemFDet(sub).RunBlocks(csr, pool));

  // Translate block nodes to global ids; drop the (component-local) edge
  // lists — aggregation only consumes nodes and φ.
  for (EnsembleMemberBlocks& member : members) {
    for (DetectedBlock& block : member.blocks) {
      for (UserId& u : block.users) u = users[u];
      for (MerchantId& v : block.merchants) v = merchants[v];
      block.edges.clear();
      block.edges.shrink_to_fit();
    }
  }
  auto entry = std::make_shared<ComponentEntry>();
  entry->members = std::move(members);
  entry->num_edges = static_cast<int64_t>(edges.size());
  return std::shared_ptr<const ComponentEntry>(std::move(entry));
}

Result<StreamingReport> StreamingDetector::Detect(const GraphVersion& version,
                                                  ThreadPool* pool) {
  // Fresh trace per streamed report: each boundary detection gets its
  // own root (stream_detect), even when fired from inside a windowed
  // replay job — per-report latency attribution needs per-report trees.
  obs::ScopedTraceContext trace_root(obs::NewRootContext());
  obs::TraceSpan detect_span(Metrics().detect_seconds, "stream_detect");
  WallTimer total_timer;
  const int64_t num_users = version.num_users();
  const int64_t num_merchants = version.num_merchants();
  const int n = config_.ensemble.num_samples;

  // --- 1. Connected components over the merged base+delta view. Seeds are
  // visited in packed-node order (users first), so component ids are
  // ordered by smallest packed node id — a pure function of content, which
  // the tie-break of the global block merge below relies on.
  user_comp_.assign(static_cast<size_t>(num_users), -1);
  merchant_comp_.assign(static_cast<size_t>(num_merchants), -1);
  int32_t num_components = 0;
  std::vector<int64_t> stack;
  for (UserId u = 0; u < num_users; ++u) {
    if (user_comp_[u] != -1) continue;
    bool has_edge = false;
    version.ForEachUserNeighbor(u, [&has_edge](MerchantId) {
      has_edge = true;
    });
    if (!has_edge) continue;  // isolated in the live graph
    const int32_t c = num_components++;
    user_comp_[u] = c;
    stack.clear();
    stack.push_back(u);
    while (!stack.empty()) {
      const int64_t node = stack.back();
      stack.pop_back();
      if (node < num_users) {
        version.ForEachUserNeighbor(
            static_cast<UserId>(node), [&](MerchantId v) {
              if (merchant_comp_[v] == -1) {
                merchant_comp_[v] = c;
                stack.push_back(num_users + v);
              }
            });
      } else {
        version.ForEachMerchantNeighbor(
            static_cast<MerchantId>(node - num_users), [&](UserId uu) {
              if (user_comp_[uu] == -1) {
                user_comp_[uu] = c;
                stack.push_back(uu);
              }
            });
      }
    }
  }

  // --- 2. Partition the live edges by component; canonical global order
  // is preserved within each component.
  std::vector<std::vector<Edge>> comp_edges(
      static_cast<size_t>(num_components));
  version.ForEachEdge([&](UserId u, MerchantId v) {
    comp_edges[static_cast<size_t>(user_comp_[u])].push_back({u, v});
  });

  StreamingReport out;
  out.epoch = version.epoch();
  out.fingerprint = version.ContentFingerprint();
  out.stats.components_total = num_components;

  // Touched components (diagnostics): contain a dirty-frontier node.
  {
    std::unordered_set<int32_t> touched;
    for (UserId u : version.touched_users()) {
      if (user_comp_[u] != -1) touched.insert(user_comp_[u]);
    }
    for (MerchantId v : version.touched_merchants()) {
      if (merchant_comp_[v] != -1) touched.insert(merchant_comp_[v]);
    }
    out.stats.components_touched = static_cast<int64_t>(touched.size());
  }

  // --- 3. Resolve every eligible component: cache replay or recompute.
  std::vector<std::shared_ptr<const ComponentEntry>> entries(
      static_cast<size_t>(num_components));
  for (int32_t c = 0; c < num_components; ++c) {
    const std::vector<Edge>& edges = comp_edges[static_cast<size_t>(c)];
    out.stats.edges_total += static_cast<int64_t>(edges.size());
    if (static_cast<int64_t>(edges.size()) < config_.min_component_edges) {
      continue;  // too small to host a fraud group; votes nothing
    }
    ++out.stats.components_eligible;
    const uint64_t fp = ComponentFingerprint(edges);
    std::shared_ptr<const ComponentEntry> entry = LookupCache(fp);
    if (entry == nullptr) {
      ENSEMFDET_ASSIGN_OR_RETURN(entry, ComputeComponent(edges, fp, pool));
      InsertCache(fp, entry);
      ++out.stats.components_recomputed;
      out.stats.edges_recomputed += static_cast<int64_t>(edges.size());
    } else {
      ++out.stats.components_reused;
    }
    ENSEMFDET_CHECK(static_cast<int>(entry->members.size()) == n);
    entries[static_cast<size_t>(c)] = std::move(entry);
  }

  // --- 4. Aggregate per member index: merge every component's member-i
  // blocks (descending φ, ties stable by component order — the entries
  // vector is in component order), truncate once globally, vote the kept
  // blocks' nodes. Strict member-order accumulation keeps the report
  // bit-identical at any pool width, mirroring EnsemFDet::Run.
  EnsemFDetReport& report = out.report;
  report.num_samples = n;
  report.votes = VoteTable(num_users, num_merchants);
  report.weighted_user_votes.assign(static_cast<size_t>(num_users), 0.0);
  report.weighted_merchant_votes.assign(static_cast<size_t>(num_merchants),
                                        0.0);
  report.members.resize(static_cast<size_t>(n));

  std::vector<double> user_weight(static_cast<size_t>(num_users), 0.0);
  std::vector<double> merchant_weight(static_cast<size_t>(num_merchants),
                                      0.0);
  std::vector<uint32_t> user_seen(static_cast<size_t>(num_users), 0);
  std::vector<uint32_t> merchant_seen(static_cast<size_t>(num_merchants), 0);
  uint32_t epoch = 0;

  std::vector<const DetectedBlock*> merged;
  std::vector<double> merged_scores;
  std::vector<UserId> member_users;
  std::vector<MerchantId> member_merchants;

  for (int i = 0; i < n; ++i) {
    merged.clear();
    EnsemFDetReport::MemberStats agg;
    for (const auto& entry : entries) {
      if (entry == nullptr) continue;
      const EnsembleMemberBlocks& member =
          entry->members[static_cast<size_t>(i)];
      agg.sample_users += member.stats.sample_users;
      agg.sample_merchants += member.stats.sample_merchants;
      agg.sample_edges += member.stats.sample_edges;
      agg.seconds += member.stats.seconds;
      agg.arena_grow_events += member.stats.arena_grow_events;
      for (const DetectedBlock& block : member.blocks) {
        merged.push_back(&block);
      }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const DetectedBlock* a, const DetectedBlock* b) {
                       return a->score > b->score;
                     });
    merged_scores.clear();
    merged_scores.reserve(merged.size());
    for (const DetectedBlock* block : merged) {
      merged_scores.push_back(block->score);
    }
    int keep;
    if (config_.ensemble.fdet.policy == TruncationPolicy::kFixedK) {
      keep = std::min<int>(config_.ensemble.fdet.fixed_k,
                           static_cast<int>(merged.size()));
    } else {
      keep = AutoTruncationIndex(merged_scores);
    }
    agg.num_blocks = keep;
    report.members[static_cast<size_t>(i)] = agg;

    // Per-node weight: max φ over the kept blocks containing the node;
    // first touch also collects it (same epoch-stamp trick as the
    // ensemble hot loop, so the union needs no sort/unique pass).
    ++epoch;
    member_users.clear();
    member_merchants.clear();
    for (int k = 0; k < keep; ++k) {
      const DetectedBlock& block = *merged[static_cast<size_t>(k)];
      for (UserId u : block.users) {
        if (user_seen[u] != epoch) {
          user_seen[u] = epoch;
          user_weight[u] = block.score;
          member_users.push_back(u);
        } else {
          user_weight[u] = std::max(user_weight[u], block.score);
        }
      }
      for (MerchantId v : block.merchants) {
        if (merchant_seen[v] != epoch) {
          merchant_seen[v] = epoch;
          merchant_weight[v] = block.score;
          member_merchants.push_back(v);
        } else {
          merchant_weight[v] = std::max(merchant_weight[v], block.score);
        }
      }
    }
    report.votes.AddVotes(member_users, member_merchants);
    for (UserId u : member_users) {
      report.weighted_user_votes[u] += user_weight[u];
    }
    for (MerchantId v : member_merchants) {
      report.weighted_merchant_votes[v] += merchant_weight[v];
    }
  }
  report.total_seconds = total_timer.ElapsedSeconds();

  // Mirror the report's stats into the registry in one shot so a scrape
  // delta across this call reproduces them exactly (the narration
  // contract above).
  StreamMetrics& metrics = Metrics();
  metrics.reports_total->Increment();
  metrics.components_total->Increment(out.stats.components_total);
  metrics.components_eligible_total->Increment(out.stats.components_eligible);
  metrics.components_reused_total->Increment(out.stats.components_reused);
  metrics.components_recomputed_total->Increment(
      out.stats.components_recomputed);
  metrics.components_touched_total->Increment(out.stats.components_touched);
  metrics.edges_total->Increment(out.stats.edges_total);
  metrics.edges_recomputed_total->Increment(out.stats.edges_recomputed);
  return out;
}

}  // namespace ensemfdet
