// IngestBatch <-> WAL payload bytes. One WAL record carries exactly one
// IngestBatch (the service acks per batch, so the batch is the durability
// unit); the payload layout is fixed little-endian:
//
//   [u32 transaction_count][u32 reserved]
//   transaction_count × [i64 timestamp][u32 user][u32 merchant]
//
// i.e. 8 + 16·count bytes. DecodeIngestBatch validates the exact length
// against the declared count — a CRC-valid record of the wrong shape is
// corrupt history (IOError), never UB.
#ifndef ENSEMFDET_INGEST_WAL_CODEC_H_
#define ENSEMFDET_INGEST_WAL_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "ingest/ingest_batch.h"

namespace ensemfdet {
namespace ingest {

/// Serializes `batch` into the WAL payload layout above.
std::vector<std::byte> EncodeIngestBatch(const IngestBatch& batch);

/// Inverse of EncodeIngestBatch; IOError on any length/count mismatch.
Result<IngestBatch> DecodeIngestBatch(std::span<const std::byte> payload);

/// The record timestamp a batch is framed with in the WAL: its final
/// (newest) transaction's timestamp, 0 for an empty batch.
int64_t WalRecordTimestamp(const IngestBatch& batch);

}  // namespace ingest
}  // namespace ensemfdet

#endif  // ENSEMFDET_INGEST_WAL_CODEC_H_
