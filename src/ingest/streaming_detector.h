// StreamingDetector: dirty-scoped ensemble re-detection over published
// GraphVersions.
//
// Dense blocks never span connected components, so the detector decomposes
// the live graph into components and runs one ENSEMFDET ensemble *per
// component*, with every source of randomness derived from the component's
// own content fingerprint:
//
//     seed(C) = HashCombine(config.ensemble.seed, fingerprint(C))
//
// A component whose live edge set did not change between two detections
// has the same fingerprint, hence the same seed, hence — ensemble members
// being pure functions of (subgraph, seed) — bit-identical member outputs.
// The detector therefore caches each component's raw per-member block
// lists (EnsembleMemberBlocks, translated to global ids) keyed by the
// component fingerprint, and on the next detection *replays* clean
// components from the cache while re-running only the dirty ones. Window
// slides that merge, split, or grow a component change its fingerprint and
// naturally invalidate it.
//
// Cross-component aggregation mirrors RunPartitionedFdet, lifted to each
// ensemble member index i: every component explores up to `max_blocks`
// blocks per member (fixed-k, no per-component elbow), then member i's
// blocks from all components are merged in (descending φ, ties stable by
// component order) and truncated once, globally, by the configured policy.
// Member i's votes are the nodes of its globally-kept blocks. This keeps
// tiny debris components from voting themselves dense in isolation, and —
// because the merge consumes only content-determined inputs in a
// content-determined order — makes incremental detection *bit-exact*
// against a full-window rerun: Detect(V) on a warm detector equals
// Detect(V) on a fresh one, vote for vote, weighted vote for weighted
// vote, member stat for member stat (wall-clock `seconds` and
// `arena_grow_events` excepted). tests/ingest_parity_test.cc pins this
// across seeds and all four sampling methods; the stream bench refuses to
// emit BENCH_stream.json if it ever breaks.
//
// Thread-safety: a StreamingDetector instance is NOT thread-safe (one
// mutable component cache + scratch); callers serialize Detect() per
// instance. The ThreadPool argument parallelizes ensemble members *within*
// the call, which does not affect results.
#ifndef ENSEMFDET_INGEST_STREAMING_DETECTOR_H_
#define ENSEMFDET_INGEST_STREAMING_DETECTOR_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "ensemble/ensemfdet.h"
#include "ingest/graph_version.h"

namespace ensemfdet {

struct StreamingDetectorConfig {
  /// Per-component ensemble configuration. `fdet.policy` / `fixed_k` apply
  /// to the *global* cross-component truncation; per-component exploration
  /// always keeps up to `fdet.max_blocks` blocks (RunPartitionedFdet's
  /// rule).
  EnsemFDetConfig ensemble;
  /// Components with fewer live edges are skipped outright (they vote in
  /// neither the incremental nor the full-rerun path). 1 = detect
  /// everything with an edge.
  int64_t min_component_edges = 1;
  /// Component-report cache entries (LRU). Eviction never affects
  /// results — an evicted clean component is simply recomputed.
  size_t component_cache_capacity = 4096;
};

/// What one Detect() did, beyond the report itself.
struct StreamingDetectionStats {
  int64_t components_total = 0;       ///< components with ≥ 1 live edge
  int64_t components_eligible = 0;    ///< ≥ min_component_edges
  int64_t components_reused = 0;      ///< replayed from the cache
  int64_t components_recomputed = 0;  ///< ensembles actually run
  int64_t edges_total = 0;            ///< live edges in the version
  int64_t edges_recomputed = 0;       ///< live edges inside recomputed comps
  /// Components containing a node of the version's dirty frontier
  /// (touched_users/merchants). Every *touched* eligible component is
  /// necessarily recomputed; recomputed − touched = cold-cache or
  /// LRU-evicted components.
  int64_t components_touched = 0;
};

struct StreamingCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
};

struct StreamingReport {
  /// Full-window aggregate, same shape batch EnsemFDet::Run produces:
  /// vote table over the store universes, weighted votes, N per-member
  /// stats (summed across components, num_blocks = globally kept blocks).
  EnsemFDetReport report;
  uint64_t epoch = 0;
  /// GraphVersion::ContentFingerprint() of the detected version.
  uint64_t fingerprint = 0;
  StreamingDetectionStats stats;
};

class StreamingDetector {
 public:
  /// Validates the config: num_samples ≥ 1, ratio ∈ (0, 1],
  /// min_component_edges ≥ 1, cache capacity ≥ 1.
  static Result<StreamingDetector> Create(StreamingDetectorConfig config);

  /// Detects over one published version (see file comment). Deterministic
  /// in (version content, config) — independent of pool width, of prior
  /// Detect() calls, and of cache state.
  Result<StreamingReport> Detect(const GraphVersion& version,
                                 ThreadPool* pool = nullptr);

  /// Drops every cached component report; the next Detect() is a full
  /// rerun (the bit-exactness comparator the parity tests and the stream
  /// bench use).
  void ResetCache();

  StreamingCacheStats cache_stats() const { return cache_stats_; }
  size_t cache_size() const { return lru_.size(); }
  const StreamingDetectorConfig& config() const { return config_; }

 private:
  explicit StreamingDetector(StreamingDetectorConfig config)
      : config_(std::move(config)) {}

  /// Per-component cached artifact: the N members' raw blocks in *global*
  /// ids (block edge lists dropped — aggregation only needs nodes + φ),
  /// plus the component's live edge count for the stats.
  struct ComponentEntry {
    std::vector<EnsembleMemberBlocks> members;
    int64_t num_edges = 0;
  };

  std::shared_ptr<const ComponentEntry> LookupCache(uint64_t fingerprint);
  void InsertCache(uint64_t fingerprint,
                   std::shared_ptr<const ComponentEntry> entry);

  /// Runs the per-component ensemble for one dirty component whose edges
  /// (global ids, canonical order) are given.
  Result<std::shared_ptr<const ComponentEntry>> ComputeComponent(
      const std::vector<Edge>& edges, uint64_t fingerprint,
      ThreadPool* pool) const;

  StreamingDetectorConfig config_;

  // LRU cache: front = most recent.
  struct LruEntry {
    uint64_t fingerprint;
    std::shared_ptr<const ComponentEntry> entry;
  };
  std::list<LruEntry> lru_;
  std::unordered_map<uint64_t, std::list<LruEntry>::iterator> cache_index_;
  StreamingCacheStats cache_stats_;

  // Detect() scratch, reused across calls (sized to the universes).
  std::vector<int32_t> user_comp_;
  std::vector<int32_t> merchant_comp_;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_INGEST_STREAMING_DETECTOR_H_
