#include "ingest/graph_version.h"

#include <utility>

#include "common/logging.h"
#include "graph/fingerprint.h"
#include "graph/graph_builder.h"

namespace ensemfdet {

GraphVersion::GraphVersion() {
  // One shared empty rep for all default-constructed versions.
  static const std::shared_ptr<const Rep> kEmpty = [] {
    auto rep = std::make_shared<Rep>();
    rep->base = std::make_shared<const CsrGraph>();
    return rep;
  }();
  rep_ = kEmpty;
}

uint64_t GraphVersion::ContentFingerprint() const {
  const Rep& rep = *rep_;
  {
    std::lock_guard<std::mutex> lock(rep.memo_mu);
    if (rep.memo_fingerprint_set) return rep.memo_fingerprint;
  }
  // Assemble the canonical edge array outside the lock (pure read of the
  // immutable delta structures) and hash it with the one shared recipe.
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(num_edges()));
  ForEachEdge([&edges](UserId u, MerchantId v) { edges.push_back({u, v}); });
  const uint64_t fp =
      FingerprintEdges(rep.num_users, rep.num_merchants, edges);
  std::lock_guard<std::mutex> lock(rep.memo_mu);
  rep.memo_fingerprint = fp;
  rep.memo_fingerprint_set = true;
  return fp;
}

BipartiteGraph GraphVersion::Materialize() const {
  GraphBuilder builder(rep_->num_users, rep_->num_merchants);
  builder.Reserve(num_edges());
  ForEachEdge([&builder](UserId u, MerchantId v) { builder.AddEdge(u, v); });
  // The store validated every id at ingest and the merge emits distinct
  // canonical edges, so Build cannot fail.
  Result<BipartiteGraph> built = builder.Build(DuplicatePolicy::kKeepFirst);
  ENSEMFDET_CHECK(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

std::shared_ptr<const CsrGraph> GraphVersion::MaterializeCsr() const {
  const Rep& rep = *rep_;
  if (rep.adds.empty() && rep.dead.empty()) return rep.base;
  {
    std::lock_guard<std::mutex> lock(rep.memo_mu);
    if (rep.memo_csr != nullptr) return rep.memo_csr;
  }
  auto csr =
      std::make_shared<const CsrGraph>(CsrGraph::FromBipartite(Materialize()));
  std::lock_guard<std::mutex> lock(rep.memo_mu);
  if (rep.memo_csr == nullptr) rep.memo_csr = std::move(csr);
  return rep.memo_csr;
}

}  // namespace ensemfdet
