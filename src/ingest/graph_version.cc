#include "ingest/graph_version.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "graph/fingerprint.h"
#include "graph/graph_builder.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace ensemfdet {

GraphVersion::GraphVersion() {
  // One shared empty rep for all default-constructed versions.
  static const std::shared_ptr<const Rep> kEmpty = [] {
    auto rep = std::make_shared<Rep>();
    rep->base = std::make_shared<const CsrGraph>();
    return rep;
  }();
  rep_ = kEmpty;
}

uint64_t GraphVersion::ContentFingerprint() const {
  const Rep& rep = *rep_;
  {
    std::lock_guard<std::mutex> lock(rep.memo_mu);
    if (rep.memo_fingerprint_set) return rep.memo_fingerprint;
  }
  // Assemble the canonical edge array outside the lock (pure read of the
  // immutable delta structures) and hash it with the one shared recipe.
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(num_edges()));
  ForEachEdge([&edges](UserId u, MerchantId v) { edges.push_back({u, v}); });
  const uint64_t fp =
      FingerprintEdges(rep.num_users, rep.num_merchants, edges);
  std::lock_guard<std::mutex> lock(rep.memo_mu);
  rep.memo_fingerprint = fp;
  rep.memo_fingerprint_set = true;
  return fp;
}

BipartiteGraph GraphVersion::Materialize() const {
  GraphBuilder builder(rep_->num_users, rep_->num_merchants);
  builder.Reserve(num_edges());
  ForEachEdge([&builder](UserId u, MerchantId v) { builder.AddEdge(u, v); });
  // The store validated every id at ingest and the merge emits distinct
  // canonical edges, so Build cannot fail.
  Result<BipartiteGraph> built = builder.Build(DuplicatePolicy::kKeepFirst);
  ENSEMFDET_CHECK(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

std::shared_ptr<const CsrGraph> GraphVersion::MaterializeCsr() const {
  const Rep& rep = *rep_;
  if (rep.adds.empty() && rep.dead.empty()) return rep.base;
  {
    std::lock_guard<std::mutex> lock(rep.memo_mu);
    if (rep.memo_csr != nullptr) return rep.memo_csr;
  }
  auto csr =
      std::make_shared<const CsrGraph>(CsrGraph::FromBipartite(Materialize()));
  std::lock_guard<std::mutex> lock(rep.memo_mu);
  if (rep.memo_csr == nullptr) rep.memo_csr = std::move(csr);
  return rep.memo_csr;
}

Status GraphVersion::SaveSnapshot(const std::string& path) const {
  const Rep& rep = *rep_;
  storage::SnapshotWriter writer(storage::PayloadKind::kGraphVersion,
                                 rep.num_users, rep.num_merchants,
                                 num_edges(), ContentFingerprint());
  storage::AddCsrGraphSections(&writer, *rep.base);
  storage::VersionScalarsRecord scalars;
  scalars.epoch = rep.epoch;
  scalars.flags = rep.compacted ? storage::kVersionFlagCompacted : 0;
  writer.AddSection(storage::SectionId::kVersionScalars, &scalars,
                    sizeof(scalars));
  writer.AddSection(storage::SectionId::kDeltaAdds, rep.adds.data(),
                    rep.adds.size() * sizeof(Edge));
  writer.AddSection(storage::SectionId::kDeltaDead, rep.dead.data(),
                    rep.dead.size() * sizeof(EdgeId));
  writer.AddSection(storage::SectionId::kTouchedUsers,
                    rep.touched_users.data(),
                    rep.touched_users.size() * sizeof(UserId));
  writer.AddSection(storage::SectionId::kTouchedMerchants,
                    rep.touched_merchants.data(),
                    rep.touched_merchants.size() * sizeof(MerchantId));
  return writer.Write(path);
}

GraphVersion GraphVersion::FromSnapshotParts(
    uint64_t epoch, int64_t num_users, int64_t num_merchants,
    bool compacted, std::shared_ptr<const CsrGraph> base,
    std::vector<Edge> adds, std::vector<EdgeId> dead,
    std::vector<UserId> touched_users,
    std::vector<MerchantId> touched_merchants) {
  auto rep = std::make_shared<Rep>();
  rep->epoch = epoch;
  rep->num_users = num_users;
  rep->num_merchants = num_merchants;
  rep->compacted = compacted;
  rep->base = std::move(base);
  rep->adds = std::move(adds);
  rep->adds_by_merchant = rep->adds;
  std::sort(rep->adds_by_merchant.begin(), rep->adds_by_merchant.end(),
            [](const Edge& a, const Edge& b) {
              if (a.merchant != b.merchant) return a.merchant < b.merchant;
              return a.user < b.user;
            });
  rep->dead = std::move(dead);
  rep->touched_users = std::move(touched_users);
  rep->touched_merchants = std::move(touched_merchants);
  return GraphVersion(std::move(rep));
}

Result<GraphVersion> LoadGraphVersionSnapshot(const std::string& path) {
  ENSEMFDET_ASSIGN_OR_RETURN(storage::GraphVersionParts parts,
                             storage::ReadGraphVersionSnapshot(path));
  GraphVersion version = GraphVersion::FromSnapshotParts(
      parts.epoch, parts.num_users, parts.num_merchants, parts.compacted,
      std::make_shared<const CsrGraph>(std::move(parts.base)),
      std::move(parts.adds), std::move(parts.dead),
      std::move(parts.touched_users), std::move(parts.touched_merchants));
  // The reader proved the structural invariants; the fingerprint is the
  // end-to-end integrity gate over the live edge set.
  if (version.ContentFingerprint() != parts.content_fingerprint) {
    return Status::IOError(
        "corrupt snapshot: live-set fingerprint mismatch in " + path);
  }
  return version;
}

}  // namespace ensemfdet
