// Ingest-side event types: the unit of streaming input to the incremental
// subsystem (and, transitively, to stream/windowed_detector.h, which
// re-exports Transaction for its callers).
//
// The paper's deployment setting is a live transaction stream; the ingest
// layer models it as timestamped (user, merchant) purchase events arriving
// in batches. Batches are the unit the DynamicGraphStore applies and the
// unit the DetectionService streaming sessions accept.
#ifndef ENSEMFDET_INGEST_INGEST_BATCH_H_
#define ENSEMFDET_INGEST_INGEST_BATCH_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"

namespace ensemfdet {

/// One observed purchase event.
struct Transaction {
  int64_t timestamp = 0;  ///< any monotone clock (seconds, ms, ticks)
  UserId user = 0;
  MerchantId merchant = 0;
};

/// A group of events applied to a DynamicGraphStore in one call.
/// Transactions must be non-decreasing in timestamp within the batch and
/// relative to everything already applied (a reorder buffer, e.g.
/// WindowedDetector's `max_out_of_order` slack, sits in front of the store
/// when the source cannot guarantee that).
struct IngestBatch {
  std::vector<Transaction> transactions;
};

/// What one DynamicGraphStore::Apply observed. "Structural" changes are
/// live-edge-set transitions (multiplicity 0→1 / 1→0); duplicate
/// transactions inside the window change multiplicity only and leave the
/// graph — and therefore every published GraphVersion — untouched.
struct IngestStats {
  int64_t events_ingested = 0;  ///< transactions accepted from the batch
  int64_t events_evicted = 0;   ///< transactions expired out of the window
  int64_t edges_added = 0;      ///< structural adds (0→1)
  int64_t edges_removed = 0;    ///< structural removes (1→0)
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_INGEST_INGEST_BATCH_H_
