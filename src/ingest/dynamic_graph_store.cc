#include "ingest/dynamic_graph_store.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "graph/graph_builder.h"

namespace ensemfdet {

namespace {

std::shared_ptr<const CsrGraph> EmptyBase(int64_t num_users,
                                          int64_t num_merchants) {
  GraphBuilder builder(num_users, num_merchants);
  Result<BipartiteGraph> built = builder.Build();
  ENSEMFDET_CHECK(built.ok()) << built.status().ToString();
  return std::make_shared<const CsrGraph>(
      CsrGraph::FromBipartite(*std::move(built)));
}

}  // namespace

DynamicGraphStore::DynamicGraphStore(DynamicGraphStoreConfig config)
    : config_(config),
      newest_(std::numeric_limits<int64_t>::min()),
      base_(EmptyBase(config.num_users, config.num_merchants)) {}

Result<DynamicGraphStore> DynamicGraphStore::Create(
    DynamicGraphStoreConfig config) {
  if (config.num_users < 1 || config.num_merchants < 1) {
    return Status::InvalidArgument(
        "store universes must be non-empty (num_users=" +
        std::to_string(config.num_users) +
        ", num_merchants=" + std::to_string(config.num_merchants) + ")");
  }
  if (!(config.compaction_factor > 0.0)) {
    return Status::InvalidArgument("compaction_factor must be positive");
  }
  if (config.min_compaction_delta < 1) {
    return Status::InvalidArgument("min_compaction_delta must be >= 1");
  }
  return DynamicGraphStore(config);
}

EdgeId DynamicGraphStore::FindBaseEdge(UserId u, MerchantId v) const {
  if (u >= base_->num_users()) return -1;
  std::span<const MerchantId> row = base_->user_neighbors(u);
  auto it = std::lower_bound(row.begin(), row.end(), v);
  if (it == row.end() || *it != v) return -1;
  // User-side slot index IS the EdgeId (CSR canonical-order invariant).
  return base_->user_edge_begin(u) +
         static_cast<EdgeId>(it - row.begin());
}

void DynamicGraphStore::AddLiveEdge(UserId u, MerchantId v,
                                    IngestStats* stats) {
  int32_t& mult = multiplicity_[PackEdge(u, v)];
  if (++mult != 1) return;  // duplicate inside the window: no graph change
  ++stats->edges_added;
  ++stats_.edges_added;
  const EdgeId base_edge = FindBaseEdge(u, v);
  if (base_edge >= 0) {
    // Resurrecting an evicted base edge: it must be in the dead set,
    // otherwise it would still be live and multiplicity could not be 0.
    const size_t erased = dead_.erase(base_edge);
    ENSEMFDET_CHECK(erased == 1) << "live base edge re-added";
  } else {
    added_.insert(PackEdge(u, v));
  }
  touched_users_.insert(u);
  touched_merchants_.insert(v);
}

void DynamicGraphStore::EvictExpired(IngestStats* stats) {
  if (config_.window <= 0) return;
  const int64_t cutoff = newest_ - config_.window;
  while (!window_.empty() && window_.front().timestamp < cutoff) {
    const Transaction tx = window_.front();
    window_.pop_front();
    ++stats->events_evicted;
    ++stats_.events_evicted;
    auto it = multiplicity_.find(PackEdge(tx.user, tx.merchant));
    ENSEMFDET_CHECK(it != multiplicity_.end());
    if (--it->second > 0) continue;  // another occurrence keeps it live
    multiplicity_.erase(it);
    ++stats->edges_removed;
    ++stats_.edges_removed;
    const EdgeId base_edge = FindBaseEdge(tx.user, tx.merchant);
    if (base_edge >= 0) {
      dead_.insert(base_edge);
    } else {
      added_.erase(PackEdge(tx.user, tx.merchant));
    }
    touched_users_.insert(tx.user);
    touched_merchants_.insert(tx.merchant);
  }
}

Result<IngestStats> DynamicGraphStore::Apply(const IngestBatch& batch) {
  IngestStats stats;
  for (const Transaction& tx : batch.transactions) {
    if (tx.user >= config_.num_users) {
      return Status::InvalidArgument("user id " + std::to_string(tx.user) +
                                     " outside configured universe");
    }
    if (tx.merchant >= config_.num_merchants) {
      return Status::InvalidArgument(
          "merchant id " + std::to_string(tx.merchant) +
          " outside configured universe");
    }
    if (newest_ != std::numeric_limits<int64_t>::min() &&
        tx.timestamp < newest_) {
      return Status::FailedPrecondition(
          "out-of-order timestamp " + std::to_string(tx.timestamp) +
          " after " + std::to_string(newest_));
    }
    newest_ = tx.timestamp;
    window_.push_back(tx);
    ++stats.events_ingested;
    ++stats_.events_ingested;
    AddLiveEdge(tx.user, tx.merchant, &stats);
  }
  // One eviction pass per batch: the deque is in arrival (non-decreasing
  // timestamp) order, so popping from the front against the final cutoff
  // evicts exactly the events a per-transaction pass would have.
  EvictExpired(&stats);
  return stats;
}

void DynamicGraphStore::Compact() {
  GraphBuilder builder(config_.num_users, config_.num_merchants);
  builder.Reserve(live_edges());
  // Packed keys sort as canonical (user, merchant) pairs.
  std::vector<uint64_t> keys;
  keys.reserve(multiplicity_.size());
  for (const auto& [key, mult] : multiplicity_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (uint64_t key : keys) {
    builder.AddEdge(static_cast<UserId>(key >> 32),
                    static_cast<MerchantId>(key & 0xffffffffu));
  }
  Result<BipartiteGraph> built = builder.Build(DuplicatePolicy::kKeepFirst);
  ENSEMFDET_CHECK(built.ok()) << built.status().ToString();
  base_ = std::make_shared<const CsrGraph>(
      CsrGraph::FromBipartite(*std::move(built)));
  added_.clear();
  dead_.clear();
  ++stats_.compactions;
}

GraphVersion DynamicGraphStore::Publish() {
  const int64_t threshold =
      std::max(config_.min_compaction_delta,
               static_cast<int64_t>(config_.compaction_factor *
                                    static_cast<double>(base_->num_edges())));
  const bool compact_now = pending_delta() >= threshold;
  if (compact_now) Compact();

  auto rep = std::make_shared<GraphVersion::Rep>();
  rep->epoch = ++epoch_;
  rep->num_users = config_.num_users;
  rep->num_merchants = config_.num_merchants;
  rep->compacted = compact_now;
  rep->base = base_;

  rep->adds.reserve(added_.size());
  for (uint64_t key : added_) {
    rep->adds.push_back({static_cast<UserId>(key >> 32),
                         static_cast<MerchantId>(key & 0xffffffffu)});
  }
  rep->adds_by_merchant = rep->adds;
  std::sort(rep->adds_by_merchant.begin(), rep->adds_by_merchant.end(),
            [](const Edge& a, const Edge& b) {
              if (a.merchant != b.merchant) return a.merchant < b.merchant;
              return a.user < b.user;
            });
  rep->dead.assign(dead_.begin(), dead_.end());
  std::sort(rep->dead.begin(), rep->dead.end());

  rep->touched_users.assign(touched_users_.begin(), touched_users_.end());
  std::sort(rep->touched_users.begin(), rep->touched_users.end());
  rep->touched_merchants.assign(touched_merchants_.begin(),
                                touched_merchants_.end());
  std::sort(rep->touched_merchants.begin(), rep->touched_merchants.end());
  touched_users_.clear();
  touched_merchants_.clear();

  ++stats_.publishes;
  return GraphVersion(std::move(rep));
}

}  // namespace ensemfdet
