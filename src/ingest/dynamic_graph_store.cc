#include "ingest/dynamic_graph_store.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "graph/graph_builder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/snapshot_writer.h"

namespace ensemfdet {

namespace {

// Ingest-layer instruments; counters mirror DynamicGraphStoreStats
// process-wide (per-batch deltas bumped at the end of Apply).
struct IngestMetrics {
  obs::Counter* events_ingested_total;
  obs::Counter* events_evicted_total;
  obs::Counter* edges_added_total;
  obs::Counter* edges_removed_total;
  obs::Counter* publishes_total;
  obs::Counter* compactions_total;
  obs::Histogram* publish_seconds;
  obs::Histogram* compact_seconds;
};

IngestMetrics& Metrics() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static IngestMetrics m{
      reg.GetCounter("ensemfdet_ingest_events_ingested_total"),
      reg.GetCounter("ensemfdet_ingest_events_evicted_total"),
      reg.GetCounter("ensemfdet_ingest_edges_added_total"),
      reg.GetCounter("ensemfdet_ingest_edges_removed_total"),
      reg.GetCounter("ensemfdet_ingest_publishes_total"),
      reg.GetCounter("ensemfdet_ingest_compactions_total"),
      reg.GetHistogram("ensemfdet_ingest_publish_seconds"),
      reg.GetHistogram("ensemfdet_ingest_compact_seconds"),
  };
  return m;
}

std::shared_ptr<const CsrGraph> EmptyBase(int64_t num_users,
                                          int64_t num_merchants) {
  GraphBuilder builder(num_users, num_merchants);
  Result<BipartiteGraph> built = builder.Build();
  ENSEMFDET_CHECK(built.ok()) << built.status().ToString();
  return std::make_shared<const CsrGraph>(
      CsrGraph::FromBipartite(*std::move(built)));
}

}  // namespace

DynamicGraphStore::DynamicGraphStore(DynamicGraphStoreConfig config)
    : config_(config),
      newest_(std::numeric_limits<int64_t>::min()),
      base_(EmptyBase(config.num_users, config.num_merchants)) {}

Result<DynamicGraphStore> DynamicGraphStore::Create(
    DynamicGraphStoreConfig config) {
  if (config.num_users < 1 || config.num_merchants < 1) {
    return Status::InvalidArgument(
        "store universes must be non-empty (num_users=" +
        std::to_string(config.num_users) +
        ", num_merchants=" + std::to_string(config.num_merchants) + ")");
  }
  if (!(config.compaction_factor > 0.0)) {
    return Status::InvalidArgument("compaction_factor must be positive");
  }
  if (config.min_compaction_delta < 1) {
    return Status::InvalidArgument("min_compaction_delta must be >= 1");
  }
  return DynamicGraphStore(config);
}

EdgeId DynamicGraphStore::FindBaseEdge(UserId u, MerchantId v) const {
  if (u >= base_->num_users()) return -1;
  std::span<const MerchantId> row = base_->user_neighbors(u);
  auto it = std::lower_bound(row.begin(), row.end(), v);
  if (it == row.end() || *it != v) return -1;
  // User-side slot index IS the EdgeId (CSR canonical-order invariant).
  return base_->user_edge_begin(u) +
         static_cast<EdgeId>(it - row.begin());
}

void DynamicGraphStore::AddLiveEdge(UserId u, MerchantId v,
                                    IngestStats* stats) {
  int32_t& mult = multiplicity_[PackEdge(u, v)];
  if (++mult != 1) return;  // duplicate inside the window: no graph change
  ++stats->edges_added;
  ++stats_.edges_added;
  const EdgeId base_edge = FindBaseEdge(u, v);
  if (base_edge >= 0) {
    // Resurrecting an evicted base edge: it must be in the dead set,
    // otherwise it would still be live and multiplicity could not be 0.
    const size_t erased = dead_.erase(base_edge);
    ENSEMFDET_CHECK(erased == 1) << "live base edge re-added";
  } else {
    added_.insert(PackEdge(u, v));
  }
  touched_users_.insert(u);
  touched_merchants_.insert(v);
}

void DynamicGraphStore::EvictExpired(IngestStats* stats) {
  if (config_.window <= 0) return;
  const int64_t cutoff = newest_ - config_.window;
  while (!window_.empty() && window_.front().timestamp < cutoff) {
    const Transaction tx = window_.front();
    window_.pop_front();
    ++stats->events_evicted;
    ++stats_.events_evicted;
    auto it = multiplicity_.find(PackEdge(tx.user, tx.merchant));
    ENSEMFDET_CHECK(it != multiplicity_.end());
    if (--it->second > 0) continue;  // another occurrence keeps it live
    multiplicity_.erase(it);
    ++stats->edges_removed;
    ++stats_.edges_removed;
    const EdgeId base_edge = FindBaseEdge(tx.user, tx.merchant);
    if (base_edge >= 0) {
      dead_.insert(base_edge);
    } else {
      added_.erase(PackEdge(tx.user, tx.merchant));
    }
    touched_users_.insert(tx.user);
    touched_merchants_.insert(tx.merchant);
  }
}

Result<IngestStats> DynamicGraphStore::Apply(const IngestBatch& batch) {
  IngestStats stats;
  for (const Transaction& tx : batch.transactions) {
    if (tx.user >= config_.num_users) {
      return Status::InvalidArgument("user id " + std::to_string(tx.user) +
                                     " outside configured universe");
    }
    if (tx.merchant >= config_.num_merchants) {
      return Status::InvalidArgument(
          "merchant id " + std::to_string(tx.merchant) +
          " outside configured universe");
    }
    if (newest_ != std::numeric_limits<int64_t>::min() &&
        tx.timestamp < newest_) {
      return Status::FailedPrecondition(
          "out-of-order timestamp " + std::to_string(tx.timestamp) +
          " after " + std::to_string(newest_));
    }
    newest_ = tx.timestamp;
    window_.push_back(tx);
    ++stats.events_ingested;
    ++stats_.events_ingested;
    AddLiveEdge(tx.user, tx.merchant, &stats);
  }
  // One eviction pass per batch: the deque is in arrival (non-decreasing
  // timestamp) order, so popping from the front against the final cutoff
  // evicts exactly the events a per-transaction pass would have.
  EvictExpired(&stats);
  IngestMetrics& metrics = Metrics();
  metrics.events_ingested_total->Increment(stats.events_ingested);
  metrics.events_evicted_total->Increment(stats.events_evicted);
  metrics.edges_added_total->Increment(stats.edges_added);
  metrics.edges_removed_total->Increment(stats.edges_removed);
  return stats;
}

void DynamicGraphStore::Compact() {
  obs::TraceSpan span(Metrics().compact_seconds, "store_compact");
  GraphBuilder builder(config_.num_users, config_.num_merchants);
  builder.Reserve(live_edges());
  // Packed keys sort as canonical (user, merchant) pairs.
  std::vector<uint64_t> keys;
  keys.reserve(multiplicity_.size());
  for (const auto& [key, mult] : multiplicity_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (uint64_t key : keys) {
    builder.AddEdge(static_cast<UserId>(key >> 32),
                    static_cast<MerchantId>(key & 0xffffffffu));
  }
  Result<BipartiteGraph> built = builder.Build(DuplicatePolicy::kKeepFirst);
  ENSEMFDET_CHECK(built.ok()) << built.status().ToString();
  base_ = std::make_shared<const CsrGraph>(
      CsrGraph::FromBipartite(*std::move(built)));
  added_.clear();
  dead_.clear();
  ++stats_.compactions;
  Metrics().compactions_total->Increment();
}

DynamicGraphStore::SortedDelta DynamicGraphStore::BuildSortedDelta() const {
  SortedDelta delta;
  delta.adds.reserve(added_.size());
  // Packed keys sort as canonical (user, merchant) pairs, and std::set
  // iterates them ascending.
  for (uint64_t key : added_) {
    delta.adds.push_back({static_cast<UserId>(key >> 32),
                          static_cast<MerchantId>(key & 0xffffffffu)});
  }
  delta.adds_by_merchant = delta.adds;
  std::sort(delta.adds_by_merchant.begin(), delta.adds_by_merchant.end(),
            [](const Edge& a, const Edge& b) {
              if (a.merchant != b.merchant) return a.merchant < b.merchant;
              return a.user < b.user;
            });
  delta.dead.assign(dead_.begin(), dead_.end());
  std::sort(delta.dead.begin(), delta.dead.end());
  delta.touched_users.assign(touched_users_.begin(), touched_users_.end());
  std::sort(delta.touched_users.begin(), delta.touched_users.end());
  delta.touched_merchants.assign(touched_merchants_.begin(),
                                 touched_merchants_.end());
  std::sort(delta.touched_merchants.begin(),
            delta.touched_merchants.end());
  return delta;
}

GraphVersion DynamicGraphStore::Publish() {
  obs::TraceSpan span(Metrics().publish_seconds, "store_publish");
  const int64_t threshold =
      std::max(config_.min_compaction_delta,
               static_cast<int64_t>(config_.compaction_factor *
                                    static_cast<double>(base_->num_edges())));
  const bool compact_now = pending_delta() >= threshold;
  if (compact_now) Compact();

  auto rep = std::make_shared<GraphVersion::Rep>();
  rep->epoch = ++epoch_;
  rep->num_users = config_.num_users;
  rep->num_merchants = config_.num_merchants;
  rep->compacted = compact_now;
  rep->base = base_;

  SortedDelta delta = BuildSortedDelta();
  rep->adds = std::move(delta.adds);
  rep->adds_by_merchant = std::move(delta.adds_by_merchant);
  rep->dead = std::move(delta.dead);
  rep->touched_users = std::move(delta.touched_users);
  rep->touched_merchants = std::move(delta.touched_merchants);
  touched_users_.clear();
  touched_merchants_.clear();

  ++stats_.publishes;
  Metrics().publishes_total->Increment();
  return GraphVersion(std::move(rep));
}

Status DynamicGraphStore::SaveCheckpoint(
    const std::string& path, const storage::DetectorClockRecord* clock,
    std::span<const storage::ReorderEventRecord> reorder,
    const storage::WalPositionRecord* wal) const {
  const SortedDelta delta = BuildSortedDelta();

  // The header fingerprint covers the live set (base − dead + adds); a
  // transient version over shared state computes it with the one shared
  // merge + hash recipe.
  const uint64_t fingerprint =
      GraphVersion::FromSnapshotParts(epoch_, config_.num_users,
                                      config_.num_merchants,
                                      /*compacted=*/false, base_,
                                      delta.adds, delta.dead, {}, {})
          .ContentFingerprint();

  storage::SnapshotWriter writer(storage::PayloadKind::kStoreCheckpoint,
                                 config_.num_users, config_.num_merchants,
                                 live_edges(), fingerprint);
  storage::AddCsrGraphSections(&writer, *base_);
  storage::VersionScalarsRecord scalars;
  scalars.epoch = epoch_;
  writer.AddSection(storage::SectionId::kVersionScalars, &scalars,
                    sizeof(scalars));
  writer.AddSection(storage::SectionId::kDeltaAdds, delta.adds.data(),
                    delta.adds.size() * sizeof(Edge));
  writer.AddSection(storage::SectionId::kDeltaDead, delta.dead.data(),
                    delta.dead.size() * sizeof(EdgeId));
  writer.AddSection(storage::SectionId::kTouchedUsers,
                    delta.touched_users.data(),
                    delta.touched_users.size() * sizeof(UserId));
  writer.AddSection(storage::SectionId::kTouchedMerchants,
                    delta.touched_merchants.data(),
                    delta.touched_merchants.size() * sizeof(MerchantId));

  storage::StoreStateRecord state;
  state.cfg_num_users = config_.num_users;
  state.cfg_num_merchants = config_.num_merchants;
  state.cfg_window = config_.window;
  state.cfg_compaction_factor = config_.compaction_factor;
  state.cfg_min_compaction_delta = config_.min_compaction_delta;
  state.newest_timestamp = newest_;
  state.epoch = epoch_;
  state.events_ingested = stats_.events_ingested;
  state.events_evicted = stats_.events_evicted;
  state.edges_added = stats_.edges_added;
  state.edges_removed = stats_.edges_removed;
  state.publishes = stats_.publishes;
  state.compactions = stats_.compactions;
  writer.AddSection(storage::SectionId::kStoreState, &state, sizeof(state));

  std::vector<storage::SnapshotTransaction> window;
  window.reserve(window_.size());
  for (const Transaction& tx : window_) {
    window.push_back({tx.timestamp, tx.user, tx.merchant});
  }
  writer.AddSection(storage::SectionId::kWindowEvents, window.data(),
                    window.size() * sizeof(storage::SnapshotTransaction));

  if (clock != nullptr) {
    writer.AddSection(storage::SectionId::kDetectorClock, clock,
                      sizeof(*clock));
    writer.AddSection(
        storage::SectionId::kReorderEvents, reorder.data(),
        reorder.size() * sizeof(storage::ReorderEventRecord));
  }
  if (wal != nullptr) {
    writer.AddSection(storage::SectionId::kWalPosition, wal, sizeof(*wal));
  }
  return writer.Write(path);
}

Result<DynamicGraphStore> DynamicGraphStore::FromCheckpoint(
    storage::StoreCheckpointParts parts) {
  DynamicGraphStoreConfig config;
  config.num_users = parts.state.cfg_num_users;
  config.num_merchants = parts.state.cfg_num_merchants;
  config.window = parts.state.cfg_window;
  config.compaction_factor = parts.state.cfg_compaction_factor;
  config.min_compaction_delta = parts.state.cfg_min_compaction_delta;
  ENSEMFDET_ASSIGN_OR_RETURN(DynamicGraphStore store,
                             DynamicGraphStore::Create(config));

  store.base_ =
      std::make_shared<const CsrGraph>(std::move(parts.version.base));
  store.epoch_ = parts.state.epoch;
  store.newest_ = parts.state.newest_timestamp;
  store.stats_.events_ingested = parts.state.events_ingested;
  store.stats_.events_evicted = parts.state.events_evicted;
  store.stats_.edges_added = parts.state.edges_added;
  store.stats_.edges_removed = parts.state.edges_removed;
  store.stats_.publishes = parts.state.publishes;
  store.stats_.compactions = parts.state.compactions;
  for (const Edge& e : parts.version.adds) {
    store.added_.insert(PackEdge(e.user, e.merchant));
  }
  store.dead_.insert(parts.version.dead.begin(), parts.version.dead.end());
  store.touched_users_.insert(parts.version.touched_users.begin(),
                              parts.version.touched_users.end());
  store.touched_merchants_.insert(parts.version.touched_merchants.begin(),
                                  parts.version.touched_merchants.end());
  for (const storage::SnapshotTransaction& tx : parts.window) {
    store.window_.push_back({tx.timestamp, tx.user, tx.merchant});
    ++store.multiplicity_[PackEdge(tx.user, tx.merchant)];
  }

  // The reader proved per-section invariants; what remains is the
  // cross-section consistency the store's CHECKed invariants depend on —
  // a checkpoint whose window disagrees with its base/delta must fail
  // here as a Status, not abort (or corrupt) later.
  const int64_t live = store.base_->num_edges() -
                       static_cast<int64_t>(store.dead_.size()) +
                       static_cast<int64_t>(store.added_.size());
  if (static_cast<int64_t>(store.multiplicity_.size()) != live) {
    return Status::IOError(
        "corrupt checkpoint: window events disagree with base/delta live "
        "set (" +
        std::to_string(store.multiplicity_.size()) + " distinct vs " +
        std::to_string(live) + " live)");
  }
  for (const auto& [key, mult] : store.multiplicity_) {
    const UserId u = static_cast<UserId>(key >> 32);
    const MerchantId v = static_cast<MerchantId>(key & 0xffffffffu);
    const EdgeId base_edge = store.FindBaseEdge(u, v);
    const bool live_here = base_edge >= 0 ? store.dead_.count(base_edge) == 0
                                          : store.added_.count(key) == 1;
    if (!live_here) {
      return Status::IOError(
          "corrupt checkpoint: window edge (" + std::to_string(u) + ", " +
          std::to_string(v) + ") is not live in base/delta");
    }
    if (base_edge >= 0 && store.added_.count(key) != 0) {
      return Status::IOError(
          "corrupt checkpoint: base edge also present in delta adds");
    }
  }
  if (!store.window_.empty() &&
      store.newest_ < store.window_.back().timestamp) {
    return Status::IOError(
        "corrupt checkpoint: newest timestamp behind the window");
  }

  // End-to-end integrity gate: the restored live set must hash to the
  // writer's fingerprint.
  std::vector<EdgeId> dead(store.dead_.begin(), store.dead_.end());
  std::sort(dead.begin(), dead.end());
  const uint64_t fingerprint =
      GraphVersion::FromSnapshotParts(store.epoch_, config.num_users,
                                      config.num_merchants,
                                      /*compacted=*/false, store.base_,
                                      parts.version.adds, std::move(dead),
                                      {}, {})
          .ContentFingerprint();
  if (fingerprint != parts.version.content_fingerprint) {
    return Status::IOError(
        "corrupt checkpoint: restored live set does not hash to the "
        "writer's content fingerprint");
  }
  return store;
}

Result<DynamicGraphStore> DynamicGraphStore::RestoreCheckpoint(
    const std::string& path) {
  ENSEMFDET_ASSIGN_OR_RETURN(storage::StoreCheckpointParts parts,
                             storage::ReadStoreCheckpoint(path));
  return FromCheckpoint(std::move(parts));
}

}  // namespace ensemfdet
