// GraphVersion: one immutable, epoch-versioned snapshot of a
// DynamicGraphStore's live edge set, represented as
//
//     live(V) = (base \ dead) ∪ adds
//
// where `base` is the CSR graph frozen at the last compaction, `dead` is
// the sorted list of base EdgeIds evicted since, and `adds` is the
// canonical-sorted list of edges inserted since that are not in `base`.
// Publishing a version therefore costs O(|delta| log |delta|) — the store
// never rescans the window to snapshot it — and a version stays valid (and
// bit-stable) forever, however the store mutates afterwards.
//
// Delta-log invariants (established by DynamicGraphStore::Publish, pinned
// by tests/ingest_store_test.cc):
//
//  * `adds` is ascending (user, merchant), duplicate-free, and disjoint
//    from base's edge set; `adds_by_merchant` is the same multiset sorted
//    by (merchant, user).
//  * `dead` is ascending, duplicate-free, and every entry is a valid base
//    EdgeId. An edge is never in `adds` and resurrected from `dead` at
//    once — re-adding an evicted base edge clears it from `dead` instead.
//  * Iterating users ascending and, per user, merging the base row with
//    the adds row yields the live edge set in canonical (user, merchant)
//    order — exactly the edge-id order GraphBuilder::Build would assign,
//    which is what makes ContentFingerprint() representation-independent.
//
// Thread-safety: a GraphVersion is an immutable value (cheap shared-state
// copies); any number of threads may iterate one concurrently. The lazy
// Materialize/fingerprint memos are internally synchronized.
#ifndef ENSEMFDET_INGEST_GRAPH_VERSION_H_
#define ENSEMFDET_INGEST_GRAPH_VERSION_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"
#include "graph/csr_graph.h"

namespace ensemfdet {

class DynamicGraphStore;

class GraphVersion {
 public:
  /// An empty version: epoch 0 over a 0×0 graph.
  GraphVersion();

  /// Monotonically increasing per store, bumped on every Publish().
  uint64_t epoch() const { return rep_->epoch; }
  int64_t num_users() const { return rep_->num_users; }
  int64_t num_merchants() const { return rep_->num_merchants; }
  /// Live (distinct) edges: base − dead + adds.
  int64_t num_edges() const {
    return rep_->base->num_edges() -
           static_cast<int64_t>(rep_->dead.size()) +
           static_cast<int64_t>(rep_->adds.size());
  }
  bool empty() const { return num_edges() == 0; }

  /// True iff this Publish() rebuilt the base (delta threshold tripped);
  /// a compacted version has an empty delta-log.
  bool compacted() const { return rep_->compacted; }

  /// The frozen base CSR and the delta-log against it.
  const CsrGraph& base() const { return *rep_->base; }
  std::span<const Edge> delta_adds() const { return rep_->adds; }
  std::span<const EdgeId> delta_dead() const { return rep_->dead; }

  /// Nodes whose incident live-edge set changed since the *previous*
  /// published version (sorted, duplicate-free) — the dirty frontier the
  /// streaming detector's reuse statistics are scored against.
  std::span<const UserId> touched_users() const {
    return rep_->touched_users;
  }
  std::span<const MerchantId> touched_merchants() const {
    return rep_->touched_merchants;
  }

  /// Visits every live edge in canonical (user, merchant) order — a linear
  /// two-cursor merge of the base rows (skipping dead slots) with the adds
  /// rows. O(num_edges + |dead|). `fn(UserId, MerchantId)`.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    const Rep& rep = *rep_;
    const CsrGraph& base = *rep.base;
    size_t dead_cursor = 0;  // base user-side slots are EdgeIds, ascending
    size_t add_cursor = 0;
    for (UserId u = 0; u < base.num_users(); ++u) {
      std::span<const MerchantId> row = base.user_neighbors(u);
      EdgeId id = base.user_edge_begin(u);
      size_t k = 0;
      // Merge: base row and adds row are both ascending in merchant id.
      while (true) {
        // Skip dead base slots first so the merge only sees live edges.
        while (k < row.size() && dead_cursor < rep.dead.size() &&
               rep.dead[dead_cursor] == id + static_cast<EdgeId>(k)) {
          ++dead_cursor;
          ++k;
        }
        const bool base_left = k < row.size();
        const bool add_left = add_cursor < rep.adds.size() &&
                              rep.adds[add_cursor].user == u;
        if (!base_left && !add_left) break;
        if (!add_left ||
            (base_left && row[k] < rep.adds[add_cursor].merchant)) {
          fn(u, row[k]);
          ++k;
        } else {
          fn(u, rep.adds[add_cursor].merchant);
          ++add_cursor;
        }
      }
    }
    // Adds reference only users < num_users; merchants beyond base's node
    // range cannot occur (store universes are fixed at construction).
  }

  /// Visits the live merchant neighbors of user `u` (ascending).
  /// O(degree + log|delta|).
  template <typename Fn>
  void ForEachUserNeighbor(UserId u, Fn&& fn) const {
    const Rep& rep = *rep_;
    const CsrGraph& base = *rep.base;
    if (u < base.num_users()) {
      std::span<const MerchantId> row = base.user_neighbors(u);
      const EdgeId begin = base.user_edge_begin(u);
      auto dead_it =
          std::lower_bound(rep.dead.begin(), rep.dead.end(), begin);
      for (size_t k = 0; k < row.size(); ++k) {
        if (dead_it != rep.dead.end() &&
            *dead_it == begin + static_cast<EdgeId>(k)) {
          ++dead_it;
          continue;
        }
        fn(row[k]);
      }
    }
    auto add_it = std::lower_bound(
        rep.adds.begin(), rep.adds.end(), u,
        [](const Edge& e, UserId user) { return e.user < user; });
    for (; add_it != rep.adds.end() && add_it->user == u; ++add_it) {
      fn(add_it->merchant);
    }
  }

  /// Visits the live user neighbors of merchant `v`.
  /// O(degree · log|dead| + log|delta|).
  template <typename Fn>
  void ForEachMerchantNeighbor(MerchantId v, Fn&& fn) const {
    const Rep& rep = *rep_;
    const CsrGraph& base = *rep.base;
    if (v < base.num_merchants()) {
      std::span<const UserId> row = base.merchant_neighbors(v);
      std::span<const EdgeId> ids = base.merchant_edge_ids(v);
      for (size_t k = 0; k < row.size(); ++k) {
        if (std::binary_search(rep.dead.begin(), rep.dead.end(), ids[k])) {
          continue;
        }
        fn(row[k]);
      }
    }
    auto add_it = std::lower_bound(
        rep.adds_by_merchant.begin(), rep.adds_by_merchant.end(), v,
        [](const Edge& e, MerchantId m) { return e.merchant < m; });
    for (; add_it != rep.adds_by_merchant.end() && add_it->merchant == v;
         ++add_it) {
      fn(add_it->user);
    }
  }

  /// Stable content hash of the live edge set —
  /// `FingerprintGraph(Materialize())` by construction (both funnel
  /// through graph/fingerprint.h's FingerprintEdges), so cache keys built
  /// from a version, its materialized adjacency form, or its CSR form are
  /// interchangeable however the base/delta split happens to fall.
  /// Lazily computed once per version (O(num_edges)), then memoized.
  uint64_t ContentFingerprint() const;

  /// Rebuilds the live edge set as an adjacency-list graph. O(num_edges).
  BipartiteGraph Materialize() const;

  /// CSR form of the live edge set, lazily built once and memoized. When
  /// the delta-log is empty the base itself is returned (zero cost).
  std::shared_ptr<const CsrGraph> MaterializeCsr() const;

  /// Serializes this version (base + delta-log + epoch) as a
  /// kGraphVersion .efg snapshot (storage/snapshot_format.h). The header
  /// fingerprint is ContentFingerprint(), which LoadGraphVersionSnapshot
  /// re-verifies.
  Status SaveSnapshot(const std::string& path) const;

  /// Reassembles a version from validated snapshot parts (the ingest-side
  /// glue over storage::ReadGraphVersionSnapshot; prefer
  /// LoadGraphVersionSnapshot below). The parts must satisfy the delta-log
  /// invariants in the file comment — the snapshot reader proves them.
  static GraphVersion FromSnapshotParts(
      uint64_t epoch, int64_t num_users, int64_t num_merchants,
      bool compacted, std::shared_ptr<const CsrGraph> base,
      std::vector<Edge> adds, std::vector<EdgeId> dead,
      std::vector<UserId> touched_users,
      std::vector<MerchantId> touched_merchants);

 private:
  friend class DynamicGraphStore;

  struct Rep {
    uint64_t epoch = 0;
    int64_t num_users = 0;
    int64_t num_merchants = 0;
    bool compacted = false;
    std::shared_ptr<const CsrGraph> base;
    std::vector<Edge> adds;              // sorted (user, merchant)
    std::vector<Edge> adds_by_merchant;  // same edges, sorted (merchant, user)
    std::vector<EdgeId> dead;            // sorted base edge ids
    std::vector<UserId> touched_users;
    std::vector<MerchantId> touched_merchants;

    // Lazy memos (synchronized; Rep is otherwise immutable post-publish).
    mutable std::mutex memo_mu;
    mutable std::shared_ptr<const CsrGraph> memo_csr;
    mutable bool memo_fingerprint_set = false;
    mutable uint64_t memo_fingerprint = 0;
  };

  explicit GraphVersion(std::shared_ptr<const Rep> rep)
      : rep_(std::move(rep)) {}

  std::shared_ptr<const Rep> rep_;
};

/// Loads a kGraphVersion snapshot written by GraphVersion::SaveSnapshot
/// (or embedded in a store checkpoint), re-verifying the live-set content
/// fingerprint against the header — a version restored from disk is
/// interchangeable with the original (same ContentFingerprint, so the
/// streaming detector's content-derived ensembles reproduce bit-exactly).
Result<GraphVersion> LoadGraphVersionSnapshot(const std::string& path);

}  // namespace ensemfdet

#endif  // ENSEMFDET_INGEST_GRAPH_VERSION_H_
