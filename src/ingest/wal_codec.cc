#include "ingest/wal_codec.h"

#include <cstring>

namespace ensemfdet {
namespace ingest {

namespace {

// The on-wire transaction image; kept identical to storage's
// SnapshotTransaction so the two serialized forms never drift apart.
struct WireTransaction {
  int64_t timestamp = 0;
  uint32_t user = 0;
  uint32_t merchant = 0;
};
static_assert(sizeof(WireTransaction) == 16);

struct WireBatchHeader {
  uint32_t transaction_count = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(WireBatchHeader) == 8);

}  // namespace

std::vector<std::byte> EncodeIngestBatch(const IngestBatch& batch) {
  WireBatchHeader header;
  header.transaction_count =
      static_cast<uint32_t>(batch.transactions.size());
  std::vector<std::byte> payload(
      sizeof(header) + sizeof(WireTransaction) * batch.transactions.size());
  std::memcpy(payload.data(), &header, sizeof(header));
  std::byte* out = payload.data() + sizeof(header);
  for (const Transaction& tx : batch.transactions) {
    WireTransaction wire;
    wire.timestamp = tx.timestamp;
    wire.user = static_cast<uint32_t>(tx.user);
    wire.merchant = static_cast<uint32_t>(tx.merchant);
    std::memcpy(out, &wire, sizeof(wire));
    out += sizeof(wire);
  }
  return payload;
}

Result<IngestBatch> DecodeIngestBatch(std::span<const std::byte> payload) {
  WireBatchHeader header;
  if (payload.size() < sizeof(header)) {
    return Status::IOError("WAL batch payload of " +
                           std::to_string(payload.size()) +
                           " bytes is shorter than its header");
  }
  std::memcpy(&header, payload.data(), sizeof(header));
  const size_t expected =
      sizeof(header) +
      sizeof(WireTransaction) *
          static_cast<size_t>(header.transaction_count);
  if (payload.size() != expected) {
    return Status::IOError(
        "WAL batch payload declares " +
        std::to_string(header.transaction_count) + " transactions (" +
        std::to_string(expected) + " bytes) but carries " +
        std::to_string(payload.size()) + " bytes");
  }
  IngestBatch batch;
  batch.transactions.reserve(header.transaction_count);
  const std::byte* in = payload.data() + sizeof(header);
  for (uint32_t i = 0; i < header.transaction_count; ++i) {
    WireTransaction wire;
    std::memcpy(&wire, in, sizeof(wire));
    in += sizeof(wire);
    Transaction tx;
    tx.timestamp = wire.timestamp;
    tx.user = wire.user;
    tx.merchant = wire.merchant;
    batch.transactions.push_back(tx);
  }
  return batch;
}

int64_t WalRecordTimestamp(const IngestBatch& batch) {
  if (batch.transactions.empty()) return 0;
  return batch.transactions.back().timestamp;
}

}  // namespace ingest
}  // namespace ensemfdet
