#include "ensemble/ensemfdet.h"

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "graph/subgraph.h"

namespace ensemfdet {

namespace {

// One ensemble member's contribution, in parent-graph id space.
// weight[i] is the φ of the densest detected block containing node i —
// the per-member input to the score-weighted aggregation variant.
struct MemberOutput {
  std::vector<UserId> users;
  std::vector<double> user_weights;
  std::vector<MerchantId> merchants;
  std::vector<double> merchant_weights;
  EnsemFDetReport::MemberStats stats;
  Status status;
};

MemberOutput RunMember(const BipartiteGraph& graph, const Sampler& sampler,
                       const FdetConfig& fdet_config, Rng member_rng) {
  MemberOutput out;
  WallTimer timer;

  SubgraphView view = sampler.Sample(graph, &member_rng);
  out.stats.sample_users = view.graph.num_users();
  out.stats.sample_merchants = view.graph.num_merchants();
  out.stats.sample_edges = view.graph.num_edges();

  // RunFdet converts the sampled child to CSR once and peels in place;
  // the parent graph stays shared read-only across all pool workers.
  Result<FdetResult> fdet = RunFdet(view.graph, fdet_config);
  if (!fdet.ok()) {
    out.status = fdet.status();
    return out;
  }
  out.stats.num_blocks = fdet->truncation_index;

  // Per-node weight: max φ over the detected blocks containing the node
  // (nodes can sit in several blocks — blocks are edge-disjoint, not
  // vertex-disjoint).
  std::unordered_map<UserId, double> user_weight;
  std::unordered_map<MerchantId, double> merchant_weight;
  for (const DetectedBlock& block : fdet->blocks) {
    for (UserId lu : block.users) {
      double& w = user_weight[lu];
      w = std::max(w, block.score);
    }
    for (MerchantId lv : block.merchants) {
      double& w = merchant_weight[lv];
      w = std::max(w, block.score);
    }
  }

  for (UserId local : fdet->DetectedUsers()) {
    out.users.push_back(view.ToParentUser(local));
    out.user_weights.push_back(user_weight.at(local));
  }
  for (MerchantId local : fdet->DetectedMerchants()) {
    out.merchants.push_back(view.ToParentMerchant(local));
    out.merchant_weights.push_back(merchant_weight.at(local));
  }
  out.stats.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace

Result<EnsemFDetReport> EnsemFDet::Run(const BipartiteGraph& graph,
                                       ThreadPool* pool) const {
  if (config_.num_samples < 1) {
    return Status::InvalidArgument("num_samples (N) must be >= 1, got " +
                                   std::to_string(config_.num_samples));
  }
  ENSEMFDET_ASSIGN_OR_RETURN(
      std::unique_ptr<Sampler> sampler,
      MakeSampler(config_.method, config_.ratio, config_.reweight_edges));

  WallTimer total_timer;
  const int n = config_.num_samples;
  Rng root(config_.seed);

  std::vector<MemberOutput> outputs(static_cast<size_t>(n));
  auto run_one = [&](int64_t i) {
    outputs[static_cast<size_t>(i)] =
        RunMember(graph, *sampler, config_.fdet,
                  root.Split(static_cast<uint64_t>(i)));
  };

  if (pool != nullptr && pool->num_threads() > 1 && n > 1) {
    pool->ParallelFor(0, n, run_one);
  } else {
    for (int64_t i = 0; i < n; ++i) run_one(i);
  }

  // Aggregate strictly in member order → deterministic at any thread count.
  EnsemFDetReport report;
  report.num_samples = n;
  report.votes = VoteTable(graph.num_users(), graph.num_merchants());
  report.weighted_user_votes.assign(
      static_cast<size_t>(graph.num_users()), 0.0);
  report.weighted_merchant_votes.assign(
      static_cast<size_t>(graph.num_merchants()), 0.0);
  report.members.reserve(static_cast<size_t>(n));
  for (MemberOutput& out : outputs) {
    ENSEMFDET_RETURN_NOT_OK(out.status);
    report.votes.AddVotes(out.users, out.merchants);
    for (size_t i = 0; i < out.users.size(); ++i) {
      report.weighted_user_votes[out.users[i]] += out.user_weights[i];
    }
    for (size_t i = 0; i < out.merchants.size(); ++i) {
      report.weighted_merchant_votes[out.merchants[i]] +=
          out.merchant_weights[i];
    }
    report.members.push_back(out.stats);
  }
  report.total_seconds = total_timer.ElapsedSeconds();
  return report;
}

}  // namespace ensemfdet
