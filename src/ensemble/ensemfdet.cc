#include "ensemble/ensemfdet.h"

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "detect/csr_peeler.h"
#include "graph/subgraph.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ensemfdet {

namespace {

// Pipeline-stage instruments (DESIGN.md "Observability"): stage spans at
// member granularity — a member is ~ms of work, so two clock pairs and
// two histogram records per member stay far inside the 2% overhead
// budget that BENCH_obs.json gates.
struct DetectMetrics {
  obs::Counter* runs_total;
  obs::Counter* members_total;
  obs::Histogram* member_sample_seconds;
  obs::Histogram* member_peel_seconds;
  obs::Histogram* aggregate_seconds;
  obs::Histogram* run_seconds;
};

DetectMetrics& Metrics() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  static DetectMetrics m{
      reg.GetCounter("ensemfdet_detect_runs_total"),
      reg.GetCounter("ensemfdet_detect_members_total"),
      reg.GetHistogram("ensemfdet_detect_member_sample_seconds"),
      reg.GetHistogram("ensemfdet_detect_member_peel_seconds"),
      reg.GetHistogram("ensemfdet_detect_aggregate_seconds"),
      reg.GetHistogram("ensemfdet_detect_run_seconds"),
  };
  return m;
}

// One ensemble member's contribution, in parent-graph id space.
// weight[i] is the φ of the densest detected block containing node i —
// the per-member input to the score-weighted aggregation variant. Node
// lists are duplicate-free but not necessarily sorted (aggregation
// increments independent per-node slots, so order cannot affect it).
struct MemberOutput {
  std::vector<UserId> users;
  std::vector<double> user_weights;
  std::vector<MerchantId> merchants;
  std::vector<double> merchant_weights;
  EnsemFDetReport::MemberStats stats;
  Status status;
};

// Per-worker arena for the zero-materialization member path: sampling
// scratch, the FDET peel arena, and dense epoch-stamped per-node weight
// accumulators (replacing the reference path's per-member unordered_maps
// — no hashing, no rehash growth, no per-member clear). thread_local, so
// it persists across members, runs, and graphs served by the same worker;
// stamps make stale contents harmless and growth events count arena
// reuse misses (zero once warm).
struct MemberArena {
  EdgeMaskScratch sample;
  std::vector<EdgeId> mask;
  PeelScratch peel;
  std::vector<double> user_weight;      // valid iff user_seen[u] == epoch
  std::vector<double> merchant_weight;
  std::vector<uint32_t> user_seen;
  std::vector<uint32_t> merchant_seen;
  uint32_t epoch = 0;
  int64_t weight_grow_events = 0;

  void PrepareWeights(const CsrGraph& graph) {
    const size_t users = static_cast<size_t>(graph.num_users());
    const size_t merchants = static_cast<size_t>(graph.num_merchants());
    if (user_seen.size() < users) {
      user_seen.resize(users, 0u);
      user_weight.resize(users, 0.0);
      ++weight_grow_events;
    }
    if (merchant_seen.size() < merchants) {
      merchant_seen.resize(merchants, 0u);
      merchant_weight.resize(merchants, 0.0);
      ++weight_grow_events;
    }
  }

  uint32_t NextEpoch() {
    if (++epoch == 0) {
      std::fill(user_seen.begin(), user_seen.end(), 0u);
      std::fill(merchant_seen.begin(), merchant_seen.end(), 0u);
      epoch = 1;
    }
    return epoch;
  }

  int64_t TotalGrowEvents() const {
    return weight_grow_events + sample.grow_events + peel.grow_events;
  }
};

thread_local MemberArena t_member_arena;

// Validation + sampler construction shared by every ensemble entry point
// (Run / RunReference / RunBlocks): one definition of what a legal config
// is and of the sampler members draw from.
Result<std::unique_ptr<Sampler>> ValidatedSampler(
    const EnsemFDetConfig& config) {
  if (config.num_samples < 1) {
    return Status::InvalidArgument("num_samples (N) must be >= 1, got " +
                                   std::to_string(config.num_samples));
  }
  return MakeSampler(config.method, config.ratio, config.reweight_edges);
}

// Pool-vs-serial member dispatch shared by every entry point; outputs are
// indexed by member, so results are identical at any pool width. Member
// costs are skewed (sampled residuals differ wildly in size), so wide
// pools use the work-stealing split rather than the static one.
template <typename Fn>
void ForEachMember(int n, ThreadPool* pool, const Fn& run_one) {
  if (pool != nullptr && pool->num_threads() > 1 && n > 1) {
    pool->ParallelForWorkStealing(0, n, run_one);
  } else {
    for (int64_t i = 0; i < n; ++i) run_one(i);
  }
}

// The zero-materialization member core shared by Run() and RunBlocks():
// sample an edge mask of the shared parent, run masked FDET in place on
// the worker arena, record the sample stats. Everything is in parent ids
// from the start — no SubgraphView, no ToParentUser remap. Keeping this
// single-sourced is what makes the two entry points' members identical by
// construction (the streaming parity contract rests on it).
Result<FdetResult> RunMemberCsrCore(const CsrGraph& graph,
                                    const Sampler& sampler,
                                    const FdetConfig& fdet_config, Rng* rng,
                                    MemberArena* arena,
                                    EnsemFDetReport::MemberStats* stats) {
  DetectMetrics& metrics = Metrics();
  metrics.members_total->Increment();
  EdgeMaskInfo info;
  {
    obs::TraceSpan span(metrics.member_sample_seconds, "member_sample");
    info = sampler.SampleEdgeMask(graph, rng, &arena->sample, &arena->mask);
  }
  stats->sample_users = info.sample_users;
  stats->sample_merchants = info.sample_merchants;
  stats->sample_edges = static_cast<int64_t>(arena->mask.size());
  obs::TraceSpan span(metrics.member_peel_seconds, "member_peel");
  Result<FdetResult> fdet = RunFdetCsrMasked(
      graph, arena->mask, info.weight_scale, fdet_config, &arena->peel);
  if (fdet.ok()) stats->num_blocks = fdet->truncation_index;
  return fdet;
}

// Run()'s member: the core above plus vote flattening through the dense
// epoch-stamped weight arrays.
MemberOutput RunMemberCsr(const CsrGraph& graph, const Sampler& sampler,
                          const FdetConfig& fdet_config, Rng member_rng) {
  MemberArena& arena = t_member_arena;
  MemberOutput out;
  WallTimer timer;
  const int64_t grow_before = arena.TotalGrowEvents();

  Result<FdetResult> fdet = RunMemberCsrCore(graph, sampler, fdet_config,
                                             &member_rng, &arena, &out.stats);
  if (!fdet.ok()) {
    out.status = fdet.status();
    return out;
  }

  // Per-node weight: max φ over the detected blocks containing the node
  // (nodes can sit in several blocks — blocks are edge-disjoint, not
  // vertex-disjoint). First touch this epoch also collects the node, so
  // the union needs no sort/unique pass.
  arena.PrepareWeights(graph);
  const uint32_t ep = arena.NextEpoch();
  for (const DetectedBlock& block : fdet->blocks) {
    for (UserId u : block.users) {
      if (arena.user_seen[u] != ep) {
        arena.user_seen[u] = ep;
        arena.user_weight[u] = block.score;
        out.users.push_back(u);
      } else {
        arena.user_weight[u] = std::max(arena.user_weight[u], block.score);
      }
    }
    for (MerchantId v : block.merchants) {
      if (arena.merchant_seen[v] != ep) {
        arena.merchant_seen[v] = ep;
        arena.merchant_weight[v] = block.score;
        out.merchants.push_back(v);
      } else {
        arena.merchant_weight[v] =
            std::max(arena.merchant_weight[v], block.score);
      }
    }
  }
  out.user_weights.reserve(out.users.size());
  for (UserId u : out.users) out.user_weights.push_back(arena.user_weight[u]);
  out.merchant_weights.reserve(out.merchants.size());
  for (MerchantId v : out.merchants) {
    out.merchant_weights.push_back(arena.merchant_weight[v]);
  }

  out.stats.arena_grow_events = arena.TotalGrowEvents() - grow_before;
  out.stats.seconds = timer.ElapsedSeconds();
  return out;
}

// The seed materializing member (reference path): build the sampled child
// graph, FDET it, remap local ids back to the parent.
MemberOutput RunMemberReference(const BipartiteGraph& graph,
                                const Sampler& sampler,
                                const FdetConfig& fdet_config,
                                Rng member_rng) {
  MemberOutput out;
  WallTimer timer;

  SubgraphView view = sampler.Sample(graph, &member_rng);
  out.stats.sample_users = view.graph.num_users();
  out.stats.sample_merchants = view.graph.num_merchants();
  out.stats.sample_edges = view.graph.num_edges();

  // RunFdet converts the sampled child to CSR once and peels in place;
  // the parent graph stays shared read-only across all pool workers.
  Result<FdetResult> fdet = RunFdet(view.graph, fdet_config);
  if (!fdet.ok()) {
    out.status = fdet.status();
    return out;
  }
  out.stats.num_blocks = fdet->truncation_index;

  std::unordered_map<UserId, double> user_weight;
  std::unordered_map<MerchantId, double> merchant_weight;
  for (const DetectedBlock& block : fdet->blocks) {
    for (UserId lu : block.users) {
      double& w = user_weight[lu];
      w = std::max(w, block.score);
    }
    for (MerchantId lv : block.merchants) {
      double& w = merchant_weight[lv];
      w = std::max(w, block.score);
    }
  }

  for (UserId local : fdet->DetectedUsers()) {
    out.users.push_back(view.ToParentUser(local));
    out.user_weights.push_back(user_weight.at(local));
  }
  for (MerchantId local : fdet->DetectedMerchants()) {
    out.merchants.push_back(view.ToParentMerchant(local));
    out.merchant_weights.push_back(merchant_weight.at(local));
  }
  out.stats.seconds = timer.ElapsedSeconds();
  return out;
}

// Shared tail: strict member-order aggregation → deterministic at any
// thread count (and identical across the hot and reference paths, since
// every member contributes the same per-node values either way).
Result<EnsemFDetReport> Aggregate(std::vector<MemberOutput> outputs,
                                  int64_t num_users, int64_t num_merchants,
                                  const WallTimer& total_timer) {
  obs::TraceSpan span(Metrics().aggregate_seconds, "aggregate");
  EnsemFDetReport report;
  report.num_samples = static_cast<int>(outputs.size());
  report.votes = VoteTable(num_users, num_merchants);
  report.weighted_user_votes.assign(static_cast<size_t>(num_users), 0.0);
  report.weighted_merchant_votes.assign(static_cast<size_t>(num_merchants),
                                        0.0);
  report.members.reserve(outputs.size());
  for (MemberOutput& out : outputs) {
    ENSEMFDET_RETURN_NOT_OK(out.status);
    report.votes.AddVotes(out.users, out.merchants);
    for (size_t i = 0; i < out.users.size(); ++i) {
      report.weighted_user_votes[out.users[i]] += out.user_weights[i];
    }
    for (size_t i = 0; i < out.merchants.size(); ++i) {
      report.weighted_merchant_votes[out.merchants[i]] +=
          out.merchant_weights[i];
    }
    report.members.push_back(out.stats);
  }
  report.total_seconds = total_timer.ElapsedSeconds();
  return report;
}

// The one ensemble driver both paths share — validation, sampler
// construction, per-member Rng splitting, the parallel section, and
// member-order aggregation are identical by construction, which is what
// the bit-exact hot-vs-reference parity rests on. `run_member` maps
// (sampler, fdet config, member rng) to one MemberOutput.
template <typename MemberFn>
Result<EnsemFDetReport> DriveEnsemble(const EnsemFDetConfig& config,
                                      int64_t num_users,
                                      int64_t num_merchants, ThreadPool* pool,
                                      const MemberFn& run_member) {
  ENSEMFDET_ASSIGN_OR_RETURN(std::unique_ptr<Sampler> sampler,
                             ValidatedSampler(config));

  DetectMetrics& metrics = Metrics();
  metrics.runs_total->Increment();
  obs::TraceSpan run_span(metrics.run_seconds, "ensemble_run");
  WallTimer total_timer;
  const int n = config.num_samples;
  Rng root(config.seed);

  std::vector<MemberOutput> outputs(static_cast<size_t>(n));
  ForEachMember(n, pool, [&](int64_t i) {
    outputs[static_cast<size_t>(i)] = run_member(
        *sampler, config.fdet, root.Split(static_cast<uint64_t>(i)));
  });

  return Aggregate(std::move(outputs), num_users, num_merchants,
                   total_timer);
}

}  // namespace

Result<EnsemFDetReport> EnsemFDet::Run(const CsrGraph& graph,
                                       ThreadPool* pool) const {
  return DriveEnsemble(
      config_, graph.num_users(), graph.num_merchants(), pool,
      [&graph](const Sampler& sampler, const FdetConfig& fdet, Rng rng) {
        return RunMemberCsr(graph, sampler, fdet, std::move(rng));
      });
}

Result<EnsemFDetReport> EnsemFDet::Run(const BipartiteGraph& graph,
                                       ThreadPool* pool) const {
  return Run(CsrGraph::FromBipartite(graph), pool);
}

Result<EnsemFDetReport> EnsemFDet::RunReference(const BipartiteGraph& graph,
                                                ThreadPool* pool) const {
  return DriveEnsemble(
      config_, graph.num_users(), graph.num_merchants(), pool,
      [&graph](const Sampler& sampler, const FdetConfig& fdet, Rng rng) {
        return RunMemberReference(graph, sampler, fdet, std::move(rng));
      });
}

Result<std::vector<EnsembleMemberBlocks>> EnsemFDet::RunBlocks(
    const CsrGraph& graph, ThreadPool* pool) const {
  ENSEMFDET_ASSIGN_OR_RETURN(std::unique_ptr<Sampler> sampler,
                             ValidatedSampler(config_));

  const int n = config_.num_samples;
  Rng root(config_.seed);
  std::vector<EnsembleMemberBlocks> outputs(static_cast<size_t>(n));
  std::vector<Status> statuses(static_cast<size_t>(n), Status::OK());

  // Exactly RunMemberCsr minus the vote flattening: the shared member
  // core keeps the sampling randomness and per-member FDET identical to
  // Run() by construction.
  ForEachMember(n, pool, [&](int64_t i) {
    MemberArena& arena = t_member_arena;
    EnsembleMemberBlocks& out = outputs[static_cast<size_t>(i)];
    WallTimer timer;
    const int64_t grow_before = arena.TotalGrowEvents();
    Rng member_rng = root.Split(static_cast<uint64_t>(i));
    Result<FdetResult> fdet = RunMemberCsrCore(
        graph, *sampler, config_.fdet, &member_rng, &arena, &out.stats);
    if (!fdet.ok()) {
      statuses[static_cast<size_t>(i)] = fdet.status();
      return;
    }
    out.blocks = std::move(fdet->blocks);
    out.stats.arena_grow_events = arena.TotalGrowEvents() - grow_before;
    out.stats.seconds = timer.ElapsedSeconds();
  });
  for (const Status& status : statuses) {
    ENSEMFDET_RETURN_NOT_OK(status);
  }
  return outputs;
}

}  // namespace ensemfdet
