#include "ensemble/vote_table.h"

#include <algorithm>

#include "common/logging.h"

namespace ensemfdet {

VoteTable::VoteTable(int64_t num_users, int64_t num_merchants)
    : user_votes_(static_cast<size_t>(num_users), 0),
      merchant_votes_(static_cast<size_t>(num_merchants), 0) {}

void VoteTable::AddVotes(std::span<const UserId> users,
                         std::span<const MerchantId> merchants) {
  for (UserId u : users) {
    ENSEMFDET_DCHECK(u < user_votes_.size());
    ++user_votes_[u];
  }
  for (MerchantId v : merchants) {
    ENSEMFDET_DCHECK(v < merchant_votes_.size());
    ++merchant_votes_[v];
  }
}

std::vector<UserId> VoteTable::AcceptedUsers(int32_t threshold) const {
  std::vector<UserId> out;
  for (size_t u = 0; u < user_votes_.size(); ++u) {
    if (user_votes_[u] >= threshold) out.push_back(static_cast<UserId>(u));
  }
  return out;
}

std::vector<MerchantId> VoteTable::AcceptedMerchants(
    int32_t threshold) const {
  std::vector<MerchantId> out;
  for (size_t v = 0; v < merchant_votes_.size(); ++v) {
    if (merchant_votes_[v] >= threshold) {
      out.push_back(static_cast<MerchantId>(v));
    }
  }
  return out;
}

int64_t VoteTable::CountAcceptedUsers(int32_t threshold) const {
  int64_t count = 0;
  for (int32_t votes : user_votes_) count += (votes >= threshold) ? 1 : 0;
  return count;
}

int32_t VoteTable::max_user_votes() const {
  int32_t best = 0;
  for (int32_t votes : user_votes_) best = std::max(best, votes);
  return best;
}

}  // namespace ensemfdet
