// Vote accumulation and Majority Voting Aggregation (paper Definition 4).
//
// Every sampled graph's FDET output casts one vote for each node it flags;
// MVA accepts a node iff its vote count reaches the threshold T. Sweeping T
// from N down to 1 yields the paper's smooth operating curve — the key
// practicability win over FRAUDAR's all-or-nothing blocks.
#ifndef ENSEMFDET_ENSEMBLE_VOTE_TABLE_H_
#define ENSEMFDET_ENSEMBLE_VOTE_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"

namespace ensemfdet {

class VoteTable {
 public:
  VoteTable() = default;
  /// Zero votes for every node of a |U|=num_users, |V|=num_merchants graph.
  VoteTable(int64_t num_users, int64_t num_merchants);

  int64_t num_users() const {
    return static_cast<int64_t>(user_votes_.size());
  }
  int64_t num_merchants() const {
    return static_cast<int64_t>(merchant_votes_.size());
  }

  /// Casts one vote for every listed node (one ensemble member's output).
  void AddVotes(std::span<const UserId> users,
                std::span<const MerchantId> merchants);

  int32_t user_votes(UserId u) const { return user_votes_[u]; }
  int32_t merchant_votes(MerchantId v) const { return merchant_votes_[v]; }
  std::span<const int32_t> all_user_votes() const { return user_votes_; }
  std::span<const int32_t> all_merchant_votes() const {
    return merchant_votes_;
  }

  /// H(u) = accept ⇔ votes(u) ≥ threshold. Ascending id order.
  std::vector<UserId> AcceptedUsers(int32_t threshold) const;
  std::vector<MerchantId> AcceptedMerchants(int32_t threshold) const;

  /// Number of users with votes ≥ threshold (cheap count for sweeps).
  int64_t CountAcceptedUsers(int32_t threshold) const;

  int32_t max_user_votes() const;

 private:
  std::vector<int32_t> user_votes_;
  std::vector<int32_t> merchant_votes_;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_ENSEMBLE_VOTE_TABLE_H_
