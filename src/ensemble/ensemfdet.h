// ENSEMFDET (paper Algorithm 2): the full ensemble fraud detector.
//
//   1. Draw N sampled subgraphs of G with ratio S (RES / ONS / TNS).
//   2. Run FDET on every sample — in parallel over a thread pool.
//   3. Aggregate the per-sample suspicious node sets by majority voting;
//      accept nodes with ≥ T votes (threshold chosen downstream, so the
//      report keeps the full vote table and T can be swept for free).
//
// Hot path (DESIGN.md §"Ensemble hot loop"): every member runs directly on
// the shared parent CsrGraph with **zero per-member graph
// materialization** — samplers emit residual edge masks in parent edge-id
// space (Sampler::SampleEdgeMask), FDET peels those masks in place
// (RunFdetCsrMasked), and each worker thread reuses one arena (sampling
// buffers + PeelScratch + dense epoch-stamped weight arrays) across all
// its members, so a warm run performs no arena allocations at all. The
// seed materializing path survives as RunReference() — the bit-exact
// parity and performance reference (tests/ensemble_parity_test.cc,
// bench/bench_ensemble.cc), mirroring detect/fdet.h's RunFdetReference.
//
// Determinism: ensemble member i draws all randomness from
// Rng(seed).Split(i), and votes are accumulated in member order after the
// parallel section, so results are bit-identical at any thread count.
#ifndef ENSEMFDET_ENSEMBLE_ENSEMFDET_H_
#define ENSEMFDET_ENSEMBLE_ENSEMFDET_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "detect/fdet.h"
#include "ensemble/vote_table.h"
#include "graph/bipartite_graph.h"
#include "graph/csr_graph.h"
#include "sampling/sampler.h"

namespace ensemfdet {

struct EnsemFDetConfig {
  /// Sampling method M (paper Table II).
  SampleMethod method = SampleMethod::kRandomEdge;
  /// Number of sampled graphs N.
  int num_samples = 80;
  /// Sample ratio S.
  double ratio = 0.1;
  /// Apply Theorem 1's 1/p edge reweighting (RES only).
  bool reweight_edges = false;
  /// Per-sample FDET configuration.
  FdetConfig fdet;
  /// Root seed; member i uses Rng(seed).Split(i).
  uint64_t seed = 42;

  /// Repetition rate R = S · N (paper Table II) — expected number of times
  /// each edge/node is covered across the ensemble.
  double RepetitionRate() const { return ratio * num_samples; }
};

/// Everything ENSEMFDET produced, threshold-free: apply MVA by querying
/// AcceptedUsers(T) / sweeping T.
struct EnsemFDetReport {
  VoteTable votes;
  int num_samples = 0;

  /// Score-weighted votes — the flexible-aggregation hook of Definition
  /// 4's closing remark ("aggregation methods ... can be set as the one
  /// suitable for the specific requirement"): member i contributes, for
  /// each node it flags, the φ of the densest detected block containing
  /// that node instead of a flat 1. Feed these to eval::ScoreSweep for a
  /// density-aware operating curve; `votes` remains plain MVA.
  std::vector<double> weighted_user_votes;
  std::vector<double> weighted_merchant_votes;

  /// Per-member diagnostics, in member order.
  struct MemberStats {
    int64_t sample_users = 0;
    int64_t sample_merchants = 0;
    int64_t sample_edges = 0;
    int num_blocks = 0;       ///< k̂ for this member
    double seconds = 0.0;     ///< sample + FDET wall time of this member
    /// Worker-arena buffer growths while this member ran (zero-mat path
    /// only; 0 once the worker's arena is warm — the reuse counter the
    /// ensemble bench sums into `arena.grow_events`).
    int64_t arena_grow_events = 0;
  };
  std::vector<MemberStats> members;

  /// Wall-clock of the whole Run() including aggregation.
  double total_seconds = 0.0;

  /// MVA (Definition 4) at threshold T: users with ≥ T votes.
  std::vector<UserId> AcceptedUsers(int32_t threshold) const {
    return votes.AcceptedUsers(threshold);
  }
  std::vector<MerchantId> AcceptedMerchants(int32_t threshold) const {
    return votes.AcceptedMerchants(threshold);
  }
};

/// One ensemble member's raw FDET output — the pre-aggregation form the
/// incremental streaming detector caches per connected component so clean
/// components can replay their contribution into a later global
/// merge+truncation without re-running the ensemble (ingest/
/// streaming_detector.h). Node/edge ids are in the id space of the graph
/// the ensemble ran on.
struct EnsembleMemberBlocks {
  /// Blocks in detection order (k̂ per the member's FDET config).
  std::vector<DetectedBlock> blocks;
  EnsemFDetReport::MemberStats stats;
};

class EnsemFDet {
 public:
  explicit EnsemFDet(EnsemFDetConfig config) : config_(std::move(config)) {}

  const EnsemFDetConfig& config() const { return config_; }

  /// Runs the ensemble on `graph`'s shared CSR form — the
  /// zero-materialization hot path; members peel residual edge masks of
  /// `graph` in place and never build a child graph. `pool` supplies the
  /// parallelism; pass nullptr to run sequentially on the calling thread
  /// (useful for determinism tests — output is identical either way).
  /// Fails with InvalidArgument on bad N / S / FDET configuration.
  ///
  /// @note Worker arenas are thread_local caches sized to the largest
  ///       graph each thread has served; they persist across runs (that
  ///       is the point) and hold O(|U| + |V| + |E|) ints/doubles per
  ///       thread.
  Result<EnsemFDetReport> Run(const CsrGraph& graph,
                              ThreadPool* pool = nullptr) const;

  /// Adjacency-list convenience overload: converts once
  /// (CsrGraph::FromBipartite, O(|U| + |V| + |E|) amortized over all N
  /// members) and runs the hot path above. Output is bit-identical to
  /// both the CSR overload and RunReference.
  Result<EnsemFDetReport> Run(const BipartiteGraph& graph,
                              ThreadPool* pool = nullptr) const;

  /// The seed implementation: every member materializes its sampled child
  /// (SubgraphView), runs FDET on it, and remaps results to parent ids.
  /// Kept as the parity/performance reference for
  /// tests/ensemble_parity_test.cc and the ensemble bench — prefer Run.
  Result<EnsemFDetReport> RunReference(const BipartiteGraph& graph,
                                       ThreadPool* pool = nullptr) const;

  /// Runs the same N members as Run() (identical sampling randomness,
  /// identical per-member FDET, same zero-materialization hot path and
  /// worker arenas) but returns each member's raw block list instead of
  /// aggregating votes — member i of the result is what member i of Run()
  /// computed before vote accumulation. The streaming detector uses this
  /// to cache per-component member outputs and re-aggregate them under a
  /// cross-component truncation rule (see RunPartitionedFdet for the
  /// single-detector precedent).
  Result<std::vector<EnsembleMemberBlocks>> RunBlocks(
      const CsrGraph& graph, ThreadPool* pool = nullptr) const;

 private:
  EnsemFDetConfig config_;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_ENSEMBLE_ENSEMFDET_H_
