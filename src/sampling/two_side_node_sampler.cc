#include "sampling/two_side_node_sampler.h"

#include <cmath>
#include <vector>

namespace ensemfdet {

SubgraphView TwoSideNodeSampler::Sample(const BipartiteGraph& graph,
                                        Rng* rng) const {
  auto draw = [&](int64_t population) {
    int64_t target = static_cast<int64_t>(
        std::floor(ratio_ * static_cast<double>(population)));
    if (population > 0 && target == 0) target = 1;
    return rng->SampleWithoutReplacement(static_cast<uint64_t>(population),
                                         static_cast<uint64_t>(target));
  };
  std::vector<uint64_t> users64 = draw(graph.num_users());
  std::vector<uint64_t> merchants64 = draw(graph.num_merchants());
  std::vector<UserId> users(users64.begin(), users64.end());
  std::vector<MerchantId> merchants(merchants64.begin(), merchants64.end());
  return InducedSubgraph(graph, users, merchants);
}

}  // namespace ensemfdet
