#include "sampling/two_side_node_sampler.h"

#include <algorithm>
#include <vector>

namespace ensemfdet {

SubgraphView TwoSideNodeSampler::Sample(const BipartiteGraph& graph,
                                        Rng* rng) const {
  auto draw = [&](int64_t population) {
    return rng->SampleWithoutReplacement(
        static_cast<uint64_t>(population),
        static_cast<uint64_t>(SampleTargetCount(ratio_, population)));
  };
  std::vector<uint64_t> users64 = draw(graph.num_users());
  std::vector<uint64_t> merchants64 = draw(graph.num_merchants());
  std::vector<UserId> users(users64.begin(), users64.end());
  std::vector<MerchantId> merchants(merchants64.begin(), merchants64.end());
  return InducedSubgraph(graph, users, merchants);
}

EdgeMaskInfo TwoSideNodeSampler::SampleEdgeMask(
    const CsrGraph& graph, Rng* rng, EdgeMaskScratch* scratch,
    std::vector<EdgeId>* out_edges) const {
  EdgeMaskInfo info;
  // Draw order (users first, then merchants) must match Sample() so both
  // faces consume the identical rng stream.
  scratch->SampleWithoutReplacement(
      rng, static_cast<uint64_t>(graph.num_users()),
      static_cast<uint64_t>(SampleTargetCount(ratio_, graph.num_users())),
      &scratch->drawn);
  scratch->selected.assign(scratch->drawn.begin(), scratch->drawn.end());
  std::sort(scratch->selected.begin(), scratch->selected.end());
  scratch->SampleWithoutReplacement(
      rng, static_cast<uint64_t>(graph.num_merchants()),
      static_cast<uint64_t>(SampleTargetCount(ratio_, graph.num_merchants())),
      &scratch->drawn);
  scratch->selected_other.assign(scratch->drawn.begin(),
                                 scratch->drawn.end());

  // TNS keeps every selected node (isolated or not) in the child, so the
  // counts are simply the draw sizes (draws are duplicate-free).
  info.sample_users = static_cast<int64_t>(scratch->selected.size());
  info.sample_merchants = static_cast<int64_t>(scratch->selected_other.size());

  const uint32_t ep = scratch->NextEpoch();
  scratch->EnsureMark(&scratch->merchant_mark, graph.num_merchants());
  for (uint32_t v : scratch->selected_other) scratch->merchant_mark[v] = ep;

  const size_t cap_before = out_edges->capacity();
  out_edges->clear();
  for (uint32_t u : scratch->selected) {
    const auto neighbors = graph.user_neighbors(u);
    const EdgeId row_begin = graph.user_edge_begin(u);
    for (size_t k = 0; k < neighbors.size(); ++k) {
      if (scratch->merchant_mark[neighbors[k]] == ep) {
        out_edges->push_back(row_begin + static_cast<EdgeId>(k));
      }
    }
  }
  if (out_edges->capacity() != cap_before) ++scratch->grow_events;
  return info;
}

}  // namespace ensemfdet
