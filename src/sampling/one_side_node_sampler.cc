#include "sampling/one_side_node_sampler.h"

#include <algorithm>
#include <vector>

namespace ensemfdet {

SubgraphView OneSideNodeSampler::Sample(const BipartiteGraph& graph,
                                        Rng* rng) const {
  const int64_t population =
      side_ == Side::kUser ? graph.num_users() : graph.num_merchants();
  const int64_t target = SampleTargetCount(ratio_, population);

  std::vector<uint64_t> drawn = rng->SampleWithoutReplacement(
      static_cast<uint64_t>(population), static_cast<uint64_t>(target));
  std::vector<uint32_t> nodes(drawn.begin(), drawn.end());
  return OneSideInducedSubgraph(graph, side_, nodes);
}

EdgeMaskInfo OneSideNodeSampler::SampleEdgeMask(
    const CsrGraph& graph, Rng* rng, EdgeMaskScratch* scratch,
    std::vector<EdgeId>* out_edges) const {
  EdgeMaskInfo info;
  const int64_t population =
      side_ == Side::kUser ? graph.num_users() : graph.num_merchants();
  const int64_t target = SampleTargetCount(ratio_, population);
  scratch->SampleWithoutReplacement(rng, static_cast<uint64_t>(population),
                                    static_cast<uint64_t>(target),
                                    &scratch->drawn);
  scratch->selected.assign(scratch->drawn.begin(), scratch->drawn.end());
  std::sort(scratch->selected.begin(), scratch->selected.end());

  const size_t cap_before = out_edges->capacity();
  out_edges->clear();
  const uint32_t ep = scratch->NextEpoch();
  if (side_ == Side::kUser) {
    // Ascending users × contiguous ascending rows ⇒ the mask comes out
    // sorted with no extra pass.
    scratch->EnsureMark(&scratch->merchant_mark, graph.num_merchants());
    for (uint32_t u : scratch->selected) {
      const auto neighbors = graph.user_neighbors(u);
      if (!neighbors.empty()) ++info.sample_users;
      const EdgeId row_begin = graph.user_edge_begin(u);
      for (size_t k = 0; k < neighbors.size(); ++k) {
        out_edges->push_back(row_begin + static_cast<EdgeId>(k));
        const MerchantId v = neighbors[k];
        if (scratch->merchant_mark[v] != ep) {
          scratch->merchant_mark[v] = ep;
          ++info.sample_merchants;
        }
      }
    }
  } else {
    scratch->EnsureMark(&scratch->user_mark, graph.num_users());
    for (uint32_t v : scratch->selected) {
      const auto edge_ids = graph.merchant_edge_ids(v);
      if (!edge_ids.empty()) ++info.sample_merchants;
      out_edges->insert(out_edges->end(), edge_ids.begin(), edge_ids.end());
      for (UserId u : graph.merchant_neighbors(v)) {
        if (scratch->user_mark[u] != ep) {
          scratch->user_mark[u] = ep;
          ++info.sample_users;
        }
      }
    }
    // Distinct merchants' rows interleave in edge-id space; one sort
    // restores the ascending-mask contract (rows are disjoint, so no
    // duplicates to strip).
    std::sort(out_edges->begin(), out_edges->end());
  }
  if (out_edges->capacity() != cap_before) ++scratch->grow_events;
  return info;
}

}  // namespace ensemfdet
