#include "sampling/one_side_node_sampler.h"

#include <cmath>
#include <vector>

namespace ensemfdet {

SubgraphView OneSideNodeSampler::Sample(const BipartiteGraph& graph,
                                        Rng* rng) const {
  const int64_t population =
      side_ == Side::kUser ? graph.num_users() : graph.num_merchants();
  int64_t target = static_cast<int64_t>(
      std::floor(ratio_ * static_cast<double>(population)));
  if (population > 0 && target == 0) target = 1;

  std::vector<uint64_t> drawn = rng->SampleWithoutReplacement(
      static_cast<uint64_t>(population), static_cast<uint64_t>(target));
  std::vector<uint32_t> nodes(drawn.begin(), drawn.end());
  return OneSideInducedSubgraph(graph, side_, nodes);
}

}  // namespace ensemfdet
