// Structural sampling of bipartite graphs (paper §IV-A).
//
// A Sampler draws a subgraph G_s^i from G; ENSEMFDET draws N of them and
// runs FDET on each. Three methods are provided, matching the paper:
//
//   RES  Random Edge Sampling      — S·|E| edges uniformly w/o replacement
//   ONS  One-side Node Sampling    — S·|side| nodes of one side, keeping
//                                    every incident edge (full matrix rows)
//   TNS  Two-sides Node Sampling   — S·|U| users AND S·|V| merchants,
//                                    keeping the cross-section (≈S² edges)
//
// Each method has two faces with identical randomness:
//
//  * Sample() materializes a child BipartiteGraph with local→parent id
//    maps (SubgraphView) — the reference path and what non-ensemble
//    callers use.
//  * SampleEdgeMask() emits the same sample as a sorted subset of the
//    *parent's* edge ids over its shared CsrGraph — no child graph, no id
//    remapping; node samplers select vertices then expand to incident
//    edges via the CSR offsets. The ensemble hot loop feeds these masks
//    straight into RunFdetCsrMasked (DESIGN.md §"Ensemble hot loop").
//
// Both faces consume the identical Rng draw sequence, so for the same
// generator state they denote the same sample.
#ifndef ENSEMFDET_SAMPLING_SAMPLER_H_
#define ENSEMFDET_SAMPLING_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/bipartite_graph.h"
#include "graph/csr_graph.h"
#include "graph/subgraph.h"

namespace ensemfdet {

/// Which of the paper's sampling methods to apply.
enum class SampleMethod {
  kRandomEdge,       ///< RES
  kOneSideUser,      ///< ONS sampling the user (PIN) side
  kOneSideMerchant,  ///< ONS sampling the merchant side
  kTwoSide,          ///< TNS
};

/// Stable lower_snake name ("random_edge", "one_side_user", ...).
const char* SampleMethodName(SampleMethod method);

/// Inverse of SampleMethodName; NotFound for unknown names.
Result<SampleMethod> ParseSampleMethod(const std::string& name);

/// ⌊ratio·population⌋ clamped up to 1 on a nonempty population — the one
/// target-size rule every sampling method (both faces) shares; an empty
/// sample would make an ensemble member a silent no-op.
int64_t SampleTargetCount(double ratio, int64_t population);

/// Per-worker scratch for SampleEdgeMask: draw buffers, selected-node
/// lists, and epoch-stamped membership marks, all reused across calls so a
/// warm ensemble worker samples with zero arena allocations. `grow_events`
/// counts buffer growths (flat once warm; surfaced by the ensemble bench).
///
/// @note Thread-safety: mutable state — one instance per thread.
struct EdgeMaskScratch {
  std::vector<uint64_t> drawn;           ///< raw without-replacement draws
  std::vector<uint64_t> fy_perm;         ///< Fisher-Yates index buffer
  std::vector<uint32_t> selected;        ///< sorted node ids (first side)
  std::vector<uint32_t> selected_other;  ///< sorted node ids (TNS 2nd side)
  std::vector<uint32_t> user_mark;       ///< stamp == epoch ⇔ marked
  std::vector<uint32_t> merchant_mark;
  uint32_t epoch = 0;
  int64_t grow_events = 0;

  /// Advances the stamp epoch; on wraparound both mark arrays are zeroed
  /// so a stale stamp can never collide with a live epoch.
  uint32_t NextEpoch();
  /// Grows a mark array to `n` entries (zero-filled), counting the event.
  void EnsureMark(std::vector<uint32_t>* mark, int64_t n);
  /// Draws `k` distinct values uniformly from [0, n) into `*out` —
  /// consuming exactly the same rng stream, and producing exactly the
  /// same selection-order output, as Rng::SampleWithoutReplacement. For
  /// dense draws (k ≥ n/16) it runs a real Fisher-Yates prefix over the
  /// arena-cached `fy_perm` (no hashing, no allocation when warm, buffer
  /// bounded by 16k); sparse draws fall through to Rng's O(k)
  /// hash-displacement variant so huge populations cost O(k).
  void SampleWithoutReplacement(Rng* rng, uint64_t n, uint64_t k,
                                std::vector<uint64_t>* out);
};

/// What SampleEdgeMask reports alongside the edge subset: the node counts
/// of the *equivalent materialized child* (so ensemble MemberStats are
/// identical across both faces — for ONS that excludes selected nodes with
/// no incident edge, for TNS it counts every selected node, isolated ones
/// included) and the Theorem-1 weight scale to apply per edge (1/p for
/// reweighted RES, otherwise 1.0).
struct EdgeMaskInfo {
  int64_t sample_users = 0;
  int64_t sample_merchants = 0;
  double weight_scale = 1.0;
};

/// Strategy interface: draws one sampled subgraph per call. Implementations
/// are stateless w.r.t. the graph; all randomness comes from `rng`, so
/// distinct Rng::Split streams give independent ensemble members.
class Sampler {
 public:
  virtual ~Sampler() = default;

  /// The sample ratio S in (0, 1].
  virtual double ratio() const = 0;
  virtual SampleMethod method() const = 0;

  /// Draws a subgraph of `graph` using randomness from `rng`.
  virtual SubgraphView Sample(const BipartiteGraph& graph, Rng* rng) const = 0;

  /// Draws the same sample as Sample() (identical rng consumption) as an
  /// ascending, duplicate-free subset of `graph`'s own edge ids, appended
  /// into `*out_edges` (cleared first, capacity reused). No child graph is
  /// built; feed the mask to RunFdetCsrMasked with the returned
  /// weight_scale.
  ///
  /// @pre `graph` came from CsrGraph::FromBipartite (canonical edge
  ///      order); scratch/out_edges non-null.
  virtual EdgeMaskInfo SampleEdgeMask(const CsrGraph& graph, Rng* rng,
                                      EdgeMaskScratch* scratch,
                                      std::vector<EdgeId>* out_edges)
      const = 0;
};

/// Factory covering all paper methods.
/// `ratio` must be in (0, 1]. `reweight_edges` applies Theorem 1's 1/p
/// edge-weight scaling for RES so that φ of the sample estimates φ of the
/// parent (only meaningful for kRandomEdge; ignored otherwise).
Result<std::unique_ptr<Sampler>> MakeSampler(SampleMethod method, double ratio,
                                             bool reweight_edges = false);

}  // namespace ensemfdet

#endif  // ENSEMFDET_SAMPLING_SAMPLER_H_
