// Structural sampling of bipartite graphs (paper §IV-A).
//
// A Sampler draws a subgraph G_s^i from G; ENSEMFDET draws N of them and
// runs FDET on each. Three methods are provided, matching the paper:
//
//   RES  Random Edge Sampling      — S·|E| edges uniformly w/o replacement
//   ONS  One-side Node Sampling    — S·|side| nodes of one side, keeping
//                                    every incident edge (full matrix rows)
//   TNS  Two-sides Node Sampling   — S·|U| users AND S·|V| merchants,
//                                    keeping the cross-section (≈S² edges)
//
// Sampled graphs carry local→parent id maps (SubgraphView) so votes can be
// aggregated in the parent id space.
#ifndef ENSEMFDET_SAMPLING_SAMPLER_H_
#define ENSEMFDET_SAMPLING_SAMPLER_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "graph/bipartite_graph.h"
#include "graph/subgraph.h"

namespace ensemfdet {

/// Which of the paper's sampling methods to apply.
enum class SampleMethod {
  kRandomEdge,       ///< RES
  kOneSideUser,      ///< ONS sampling the user (PIN) side
  kOneSideMerchant,  ///< ONS sampling the merchant side
  kTwoSide,          ///< TNS
};

/// Stable lower_snake name ("random_edge", "one_side_user", ...).
const char* SampleMethodName(SampleMethod method);

/// Inverse of SampleMethodName; NotFound for unknown names.
Result<SampleMethod> ParseSampleMethod(const std::string& name);

/// Strategy interface: draws one sampled subgraph per call. Implementations
/// are stateless w.r.t. the graph; all randomness comes from `rng`, so
/// distinct Rng::Split streams give independent ensemble members.
class Sampler {
 public:
  virtual ~Sampler() = default;

  /// The sample ratio S in (0, 1].
  virtual double ratio() const = 0;
  virtual SampleMethod method() const = 0;

  /// Draws a subgraph of `graph` using randomness from `rng`.
  virtual SubgraphView Sample(const BipartiteGraph& graph, Rng* rng) const = 0;
};

/// Factory covering all paper methods.
/// `ratio` must be in (0, 1]. `reweight_edges` applies Theorem 1's 1/p
/// edge-weight scaling for RES so that φ of the sample estimates φ of the
/// parent (only meaningful for kRandomEdge; ignored otherwise).
Result<std::unique_ptr<Sampler>> MakeSampler(SampleMethod method, double ratio,
                                             bool reweight_edges = false);

}  // namespace ensemfdet

#endif  // ENSEMFDET_SAMPLING_SAMPLER_H_
