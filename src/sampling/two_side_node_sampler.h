// Two-sides Node Sampling (TNS, paper §IV-A4): sample ⌊S·|U|⌋ users and
// ⌊S·|V|⌋ merchants, keeping only the cross-section edges (both endpoints
// drawn). Note the sampled graph holds ≈S² of the edges — the paper's
// caveat that TNS needs a larger S or N to match RES/ONS coverage.
#ifndef ENSEMFDET_SAMPLING_TWO_SIDE_NODE_SAMPLER_H_
#define ENSEMFDET_SAMPLING_TWO_SIDE_NODE_SAMPLER_H_

#include "sampling/sampler.h"

namespace ensemfdet {

class TwoSideNodeSampler final : public Sampler {
 public:
  explicit TwoSideNodeSampler(double ratio) : ratio_(ratio) {}

  double ratio() const override { return ratio_; }
  SampleMethod method() const override { return SampleMethod::kTwoSide; }

  SubgraphView Sample(const BipartiteGraph& graph, Rng* rng) const override;

  /// Same user-then-merchant node draws as Sample(); the cross-section is
  /// collected by walking selected users' CSR rows against an
  /// epoch-stamped merchant membership mark. Node counts include isolated
  /// selected nodes, matching InducedSubgraph's child exactly.
  EdgeMaskInfo SampleEdgeMask(const CsrGraph& graph, Rng* rng,
                              EdgeMaskScratch* scratch,
                              std::vector<EdgeId>* out_edges) const override;

 private:
  double ratio_;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_SAMPLING_TWO_SIDE_NODE_SAMPLER_H_
