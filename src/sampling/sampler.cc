#include "sampling/sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "sampling/one_side_node_sampler.h"
#include "sampling/random_edge_sampler.h"
#include "sampling/two_side_node_sampler.h"

namespace ensemfdet {

int64_t SampleTargetCount(double ratio, int64_t population) {
  int64_t target = static_cast<int64_t>(
      std::floor(ratio * static_cast<double>(population)));
  if (population > 0 && target == 0) target = 1;
  return target;
}

uint32_t EdgeMaskScratch::NextEpoch() {
  if (++epoch == 0) {
    std::fill(user_mark.begin(), user_mark.end(), 0u);
    std::fill(merchant_mark.begin(), merchant_mark.end(), 0u);
    epoch = 1;
  }
  return epoch;
}

void EdgeMaskScratch::EnsureMark(std::vector<uint32_t>* mark, int64_t n) {
  if (mark->size() < static_cast<size_t>(n)) {
    mark->resize(static_cast<size_t>(n), 0u);
    ++grow_events;
  }
}

void EdgeMaskScratch::SampleWithoutReplacement(Rng* rng, uint64_t n,
                                               uint64_t k,
                                               std::vector<uint64_t>* out) {
  ENSEMFDET_CHECK(k <= n) << "sample size " << k << " > population " << n;
  // Both branches emit the identical selection-order output for the
  // identical rng consumption (step i draws j = i + NextBounded(n - i)
  // and emits the value living at slot j), so the choice is purely a
  // performance one and may differ per call:
  //  * dense draws (k ≥ n/16): real Fisher-Yates over a cached index
  //    array — an O(n) sequential refresh beats per-draw hashing, and
  //    the retained buffer is bounded by 16k, not by the population;
  //  * sparse draws: Rng's O(k) hash-displacement variant, so a tiny
  //    sample of a huge population costs O(k) time and memory.
  if (k < n / 16) {
    rng->SampleWithoutReplacement(n, k, out);
    return;
  }
  if (fy_perm.capacity() < static_cast<size_t>(n)) ++grow_events;
  fy_perm.resize(static_cast<size_t>(n));
  std::iota(fy_perm.begin(), fy_perm.end(), uint64_t{0});
  if (out->capacity() < static_cast<size_t>(k)) ++grow_events;
  out->clear();
  out->reserve(static_cast<size_t>(k));
  for (uint64_t i = 0; i < k; ++i) {
    const uint64_t j = i + rng->NextBounded(n - i);
    std::swap(fy_perm[static_cast<size_t>(i)], fy_perm[static_cast<size_t>(j)]);
    out->push_back(fy_perm[static_cast<size_t>(i)]);
  }
}

const char* SampleMethodName(SampleMethod method) {
  switch (method) {
    case SampleMethod::kRandomEdge:
      return "random_edge";
    case SampleMethod::kOneSideUser:
      return "one_side_user";
    case SampleMethod::kOneSideMerchant:
      return "one_side_merchant";
    case SampleMethod::kTwoSide:
      return "two_side";
  }
  return "unknown";
}

Result<SampleMethod> ParseSampleMethod(const std::string& name) {
  if (name == "random_edge") return SampleMethod::kRandomEdge;
  if (name == "one_side_user") return SampleMethod::kOneSideUser;
  if (name == "one_side_merchant") return SampleMethod::kOneSideMerchant;
  if (name == "two_side") return SampleMethod::kTwoSide;
  return Status::NotFound("unknown sample method: " + name);
}

Result<std::unique_ptr<Sampler>> MakeSampler(SampleMethod method, double ratio,
                                             bool reweight_edges) {
  if (!(ratio > 0.0) || ratio > 1.0) {
    return Status::InvalidArgument("sample ratio must be in (0, 1], got " +
                                   std::to_string(ratio));
  }
  switch (method) {
    case SampleMethod::kRandomEdge:
      return std::unique_ptr<Sampler>(
          new RandomEdgeSampler(ratio, reweight_edges));
    case SampleMethod::kOneSideUser:
      return std::unique_ptr<Sampler>(
          new OneSideNodeSampler(Side::kUser, ratio));
    case SampleMethod::kOneSideMerchant:
      return std::unique_ptr<Sampler>(
          new OneSideNodeSampler(Side::kMerchant, ratio));
    case SampleMethod::kTwoSide:
      return std::unique_ptr<Sampler>(new TwoSideNodeSampler(ratio));
  }
  return Status::InvalidArgument("unknown sample method enum value");
}

}  // namespace ensemfdet
