#include "sampling/sampler.h"

#include "sampling/one_side_node_sampler.h"
#include "sampling/random_edge_sampler.h"
#include "sampling/two_side_node_sampler.h"

namespace ensemfdet {

const char* SampleMethodName(SampleMethod method) {
  switch (method) {
    case SampleMethod::kRandomEdge:
      return "random_edge";
    case SampleMethod::kOneSideUser:
      return "one_side_user";
    case SampleMethod::kOneSideMerchant:
      return "one_side_merchant";
    case SampleMethod::kTwoSide:
      return "two_side";
  }
  return "unknown";
}

Result<SampleMethod> ParseSampleMethod(const std::string& name) {
  if (name == "random_edge") return SampleMethod::kRandomEdge;
  if (name == "one_side_user") return SampleMethod::kOneSideUser;
  if (name == "one_side_merchant") return SampleMethod::kOneSideMerchant;
  if (name == "two_side") return SampleMethod::kTwoSide;
  return Status::NotFound("unknown sample method: " + name);
}

Result<std::unique_ptr<Sampler>> MakeSampler(SampleMethod method, double ratio,
                                             bool reweight_edges) {
  if (!(ratio > 0.0) || ratio > 1.0) {
    return Status::InvalidArgument("sample ratio must be in (0, 1], got " +
                                   std::to_string(ratio));
  }
  switch (method) {
    case SampleMethod::kRandomEdge:
      return std::unique_ptr<Sampler>(
          new RandomEdgeSampler(ratio, reweight_edges));
    case SampleMethod::kOneSideUser:
      return std::unique_ptr<Sampler>(
          new OneSideNodeSampler(Side::kUser, ratio));
    case SampleMethod::kOneSideMerchant:
      return std::unique_ptr<Sampler>(
          new OneSideNodeSampler(Side::kMerchant, ratio));
    case SampleMethod::kTwoSide:
      return std::unique_ptr<Sampler>(new TwoSideNodeSampler(ratio));
  }
  return Status::InvalidArgument("unknown sample method enum value");
}

}  // namespace ensemfdet
