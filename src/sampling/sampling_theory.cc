#include "sampling/sampling_theory.h"

#include <cmath>

#include "common/logging.h"

namespace ensemfdet {

double NodeSampleInclusionProbability(double p_v) {
  ENSEMFDET_CHECK(p_v >= 0.0 && p_v <= 1.0);
  return p_v;
}

double EdgeSampleInclusionProbability(double p_e, int64_t q) {
  ENSEMFDET_CHECK(p_e >= 0.0 && p_e <= 1.0);
  ENSEMFDET_CHECK(q >= 0);
  if (q == 0) return 0.0;  // isolated nodes can never join an edge sample
  return 1.0 - std::pow(1.0 - p_e, static_cast<double>(q));
}

std::vector<double> ExpectedSampledDegreeCountsNS(
    const std::vector<int64_t>& degree_histogram, double p_v) {
  std::vector<double> expected(degree_histogram.size(), 0.0);
  for (size_t q = 0; q < degree_histogram.size(); ++q) {
    expected[q] = static_cast<double>(degree_histogram[q]) *
                  NodeSampleInclusionProbability(p_v);
  }
  return expected;
}

std::vector<double> ExpectedSampledDegreeCountsES(
    const std::vector<int64_t>& degree_histogram, double p_e) {
  std::vector<double> expected(degree_histogram.size(), 0.0);
  for (size_t q = 0; q < degree_histogram.size(); ++q) {
    expected[q] =
        static_cast<double>(degree_histogram[q]) *
        EdgeSampleInclusionProbability(p_e, static_cast<int64_t>(q));
  }
  return expected;
}

double LemmaOneCrossoverDegree(double p_v, double p_e) {
  ENSEMFDET_CHECK(p_v > 0.0 && p_v < 1.0);
  ENSEMFDET_CHECK(p_e > 0.0 && p_e < 1.0);
  return std::log(1.0 - p_v) / std::log(1.0 - p_e);
}

}  // namespace ensemfdet
