#include "sampling/random_edge_sampler.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace ensemfdet {

SubgraphView RandomEdgeSampler::Sample(const BipartiteGraph& graph,
                                       Rng* rng) const {
  // ⌊S·|E|⌋, but never 0 on a nonempty graph — an empty sample would make
  // the ensemble member a silent no-op.
  const int64_t target = SampleTargetCount(ratio_, graph.num_edges());

  std::vector<uint64_t> drawn = rng->SampleWithoutReplacement(
      static_cast<uint64_t>(graph.num_edges()), static_cast<uint64_t>(target));
  std::vector<EdgeId> edges(drawn.begin(), drawn.end());

  const double scale = reweight_ ? 1.0 / ratio_ : 1.0;
  return SubgraphFromEdges(graph, edges, scale);
}

EdgeMaskInfo RandomEdgeSampler::SampleEdgeMask(
    const CsrGraph& graph, Rng* rng, EdgeMaskScratch* scratch,
    std::vector<EdgeId>* out_edges) const {
  EdgeMaskInfo info;
  info.weight_scale = reweight_ ? 1.0 / ratio_ : 1.0;
  const int64_t num_edges = graph.num_edges();
  const int64_t target = SampleTargetCount(ratio_, num_edges);
  scratch->SampleWithoutReplacement(rng, static_cast<uint64_t>(num_edges),
                                    static_cast<uint64_t>(target),
                                    &scratch->drawn);

  const size_t cap_before = out_edges->capacity();
  out_edges->assign(scratch->drawn.begin(), scratch->drawn.end());
  std::sort(out_edges->begin(), out_edges->end());
  if (out_edges->capacity() != cap_before) ++scratch->grow_events;

  // Node counts of the equivalent child: distinct endpoint users fall out
  // of a boundary scan (edge_user is nondecreasing over the canonical edge
  // order); distinct merchants need one epoch-stamped pass.
  const uint32_t ep = scratch->NextEpoch();
  scratch->EnsureMark(&scratch->merchant_mark, graph.num_merchants());
  UserId prev_user = 0;
  bool first = true;
  for (EdgeId e : *out_edges) {
    const UserId u = graph.edge_user(e);
    ENSEMFDET_DCHECK(first || u >= prev_user);
    if (first || u != prev_user) ++info.sample_users;
    prev_user = u;
    first = false;
    const MerchantId v = graph.edge_merchant(e);
    if (scratch->merchant_mark[v] != ep) {
      scratch->merchant_mark[v] = ep;
      ++info.sample_merchants;
    }
  }
  return info;
}

}  // namespace ensemfdet
