#include "sampling/random_edge_sampler.h"

#include <cmath>
#include <vector>

namespace ensemfdet {

SubgraphView RandomEdgeSampler::Sample(const BipartiteGraph& graph,
                                       Rng* rng) const {
  const int64_t num_edges = graph.num_edges();
  // ⌊S·|E|⌋, but never 0 on a nonempty graph — an empty sample would make
  // the ensemble member a silent no-op.
  int64_t target = static_cast<int64_t>(
      std::floor(ratio_ * static_cast<double>(num_edges)));
  if (num_edges > 0 && target == 0) target = 1;

  std::vector<uint64_t> drawn = rng->SampleWithoutReplacement(
      static_cast<uint64_t>(num_edges), static_cast<uint64_t>(target));
  std::vector<EdgeId> edges(drawn.begin(), drawn.end());

  const double scale = reweight_ ? 1.0 / ratio_ : 1.0;
  return SubgraphFromEdges(graph, edges, scale);
}

}  // namespace ensemfdet
