// Random Edge Sampling (RES, paper §IV-A2): draw ⌊S·|E|⌋ edges uniformly
// without replacement; the sampled graph contains exactly those edges plus
// their endpoints. Per Lemma 1, this oversamples high-degree nodes — the
// dense components fraud groups live in — relative to node sampling.
#ifndef ENSEMFDET_SAMPLING_RANDOM_EDGE_SAMPLER_H_
#define ENSEMFDET_SAMPLING_RANDOM_EDGE_SAMPLER_H_

#include "sampling/sampler.h"

namespace ensemfdet {

class RandomEdgeSampler final : public Sampler {
 public:
  /// If `reweight` is set, sampled edge weights are scaled by 1/ratio
  /// (Theorem 1) so the sample's density score estimates the parent's.
  RandomEdgeSampler(double ratio, bool reweight)
      : ratio_(ratio), reweight_(reweight) {}

  double ratio() const override { return ratio_; }
  SampleMethod method() const override { return SampleMethod::kRandomEdge; }

  SubgraphView Sample(const BipartiteGraph& graph, Rng* rng) const override;

  /// Same ⌊S·|E|⌋ uniform draw as Sample(), emitted as sorted parent edge
  /// ids; weight_scale carries the 1/p reweighting instead of a scaled
  /// copy of the weights.
  EdgeMaskInfo SampleEdgeMask(const CsrGraph& graph, Rng* rng,
                              EdgeMaskScratch* scratch,
                              std::vector<EdgeId>* out_edges) const override;

 private:
  double ratio_;
  bool reweight_;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_SAMPLING_RANDOM_EDGE_SAMPLER_H_
