// Closed-form expectations from the paper's sampling analysis (Equation 3
// and Lemma 1), used by tests to validate the samplers and by
// bench_micro_sampling to print the theory-vs-empirical comparison.
//
//   E_NS[d_q] = f_D(q) · p_v          (node sampling)
//   E_ES[d_q] = f_D(q) · (1-(1-p_e)^q) (edge sampling)
//
// Lemma 1: for q > log(1-p_v)/log(1-p_e), ES samples degree-q nodes at a
// higher rate than NS.
#ifndef ENSEMFDET_SAMPLING_SAMPLING_THEORY_H_
#define ENSEMFDET_SAMPLING_SAMPLING_THEORY_H_

#include <cstdint>
#include <vector>

namespace ensemfdet {

/// Probability that a degree-q node appears in a node sample with
/// per-node probability `p_v` (constant in q).
double NodeSampleInclusionProbability(double p_v);

/// Probability that a degree-q node appears in an edge sample with
/// per-edge probability `p_e`: 1 - (1-p_e)^q.
double EdgeSampleInclusionProbability(double p_e, int64_t q);

/// E_NS[d_q] for every degree q given the histogram f_D (element q =
/// #nodes of degree q).
std::vector<double> ExpectedSampledDegreeCountsNS(
    const std::vector<int64_t>& degree_histogram, double p_v);

/// E_ES[d_q] likewise.
std::vector<double> ExpectedSampledDegreeCountsES(
    const std::vector<int64_t>& degree_histogram, double p_e);

/// Lemma 1 crossover: smallest real q* with E_ES > E_NS for q > q*,
/// i.e. log(1-p_v)/log(1-p_e). Requires p_v, p_e in (0,1).
double LemmaOneCrossoverDegree(double p_v, double p_e);

}  // namespace ensemfdet

#endif  // ENSEMFDET_SAMPLING_SAMPLING_THEORY_H_
