// One-side Node Sampling (ONS, paper §IV-A3): sample ⌊S·|side|⌋ nodes of
// one side and keep every incident edge — i.e. sample whole rows (or
// columns) of the adjacency matrix W.
//
// Which side to sample matters (paper's "retain topology" principle): when
// Davg(V) ≫ Davg(U), sampling merchants (rows of Wᵀ) preserves dense
// components — once a high-degree merchant is drawn its whole fraud block
// comes with it — while sampling users flattens the sample toward uniform.
// Fig 5 reproduces exactly this contrast.
#ifndef ENSEMFDET_SAMPLING_ONE_SIDE_NODE_SAMPLER_H_
#define ENSEMFDET_SAMPLING_ONE_SIDE_NODE_SAMPLER_H_

#include "sampling/sampler.h"

namespace ensemfdet {

class OneSideNodeSampler final : public Sampler {
 public:
  OneSideNodeSampler(Side side, double ratio) : side_(side), ratio_(ratio) {}

  double ratio() const override { return ratio_; }
  SampleMethod method() const override {
    return side_ == Side::kUser ? SampleMethod::kOneSideUser
                                : SampleMethod::kOneSideMerchant;
  }
  Side side() const { return side_; }

  SubgraphView Sample(const BipartiteGraph& graph, Rng* rng) const override;

  /// Same ⌊S·|side|⌋ node draw as Sample(); the incident-edge expansion
  /// walks the CSR rows of the selected side instead of rebuilding a
  /// child. Reported node counts match the materialized child's (selected
  /// nodes with no incident edge never appear there and are not counted).
  EdgeMaskInfo SampleEdgeMask(const CsrGraph& graph, Rng* rng,
                              EdgeMaskScratch* scratch,
                              std::vector<EdgeId>* out_edges) const override;

 private:
  Side side_;
  double ratio_;
};

}  // namespace ensemfdet

#endif  // ENSEMFDET_SAMPLING_ONE_SIDE_NODE_SAMPLER_H_
