#include "linalg/qr.h"

#include <cmath>

#include "common/logging.h"

namespace ensemfdet {

namespace {

constexpr double kRankTolerance = 1e-12;

// One modified-Gram-Schmidt sweep of column c against columns [0, c).
void ProjectOut(DenseMatrix* m, int64_t c) {
  auto target = m->col(c);
  for (int64_t j = 0; j < c; ++j) {
    double coeff = Dot(m->col(j), target);
    Axpy(-coeff, m->col(j), target);
  }
}

}  // namespace

int OrthonormalizeColumns(DenseMatrix* m, Rng* rng) {
  ENSEMFDET_CHECK(m != nullptr && rng != nullptr);
  ENSEMFDET_CHECK(m->rows() >= m->cols())
      << "cannot orthonormalize " << m->cols() << " columns in dimension "
      << m->rows();
  int redrawn = 0;
  for (int64_t c = 0; c < m->cols(); ++c) {
    // Two MGS sweeps ("twice is enough" — Kahan/Parlett) keep loss of
    // orthogonality at the roundoff level even for ill-conditioned inputs.
    ProjectOut(m, c);
    ProjectOut(m, c);
    double norm = Norm2(m->col(c));
    int attempts = 0;
    while (norm < kRankTolerance) {
      // Column lies (numerically) in the span of its predecessors: replace
      // with random data to restore full rank.
      ENSEMFDET_CHECK(++attempts < 64) << "orthonormalization cannot make "
                                          "progress; matrix dimension too "
                                          "small for requested rank?";
      for (double& v : m->col(c)) v = rng->NextGaussian();
      ProjectOut(m, c);
      ProjectOut(m, c);
      norm = Norm2(m->col(c));
      if (norm >= kRankTolerance) ++redrawn;
    }
    Scale(1.0 / norm, m->col(c));
  }
  return redrawn;
}

}  // namespace ensemfdet
