// Column orthonormalization via modified Gram-Schmidt with
// re-orthogonalization — the "Q" step of the randomized subspace iteration
// in svd.cc.
#ifndef ENSEMFDET_LINALG_QR_H_
#define ENSEMFDET_LINALG_QR_H_

#include "common/rng.h"
#include "linalg/dense.h"

namespace ensemfdet {

/// Orthonormalizes the columns of `m` in place (modified Gram-Schmidt, two
/// passes for numerical robustness). Columns that become numerically zero
/// (rank deficiency) are replaced with fresh random Gaussian vectors and
/// re-orthogonalized, so the output always has full column rank; `rng`
/// supplies that randomness. Returns the number of columns that had to be
/// re-randomized.
int OrthonormalizeColumns(DenseMatrix* m, Rng* rng);

}  // namespace ensemfdet

#endif  // ENSEMFDET_LINALG_QR_H_
