#include "linalg/dense.h"

#include <cmath>

#include "common/logging.h"

namespace ensemfdet {

double Dot(std::span<const double> x, std::span<const double> y) {
  ENSEMFDET_DCHECK(x.size() == y.size());
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

double Norm2(std::span<const double> x) { return std::sqrt(Dot(x, x)); }

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  ENSEMFDET_DCHECK(x.size() == y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

DenseMatrix GramMatrix(const DenseMatrix& a) {
  const int64_t l = a.cols();
  DenseMatrix g(l, l);
  for (int64_t i = 0; i < l; ++i) {
    for (int64_t j = i; j < l; ++j) {
      double d = Dot(a.col(i), a.col(j));
      g(i, j) = d;
      g(j, i) = d;
    }
  }
  return g;
}

DenseMatrix MatMul(const DenseMatrix& a, const DenseMatrix& w) {
  ENSEMFDET_CHECK(a.cols() == w.rows());
  DenseMatrix b(a.rows(), w.cols());
  for (int64_t j = 0; j < w.cols(); ++j) {
    auto out = b.col(j);
    for (int64_t k = 0; k < a.cols(); ++k) {
      double wkj = w(k, j);
      if (wkj == 0.0) continue;
      Axpy(wkj, a.col(k), out);
    }
  }
  return b;
}

}  // namespace ensemfdet
