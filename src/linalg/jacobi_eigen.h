// Cyclic Jacobi eigensolver for small dense symmetric matrices — the final
// l×l diagonalization step of the truncated SVD (l ≲ 64, so the O(l³) per
// sweep cost is irrelevant and Jacobi's unconditional stability wins).
#ifndef ENSEMFDET_LINALG_JACOBI_EIGEN_H_
#define ENSEMFDET_LINALG_JACOBI_EIGEN_H_

#include <vector>

#include "linalg/dense.h"

namespace ensemfdet {

/// Eigendecomposition S = V·diag(values)·Vᵀ of a symmetric matrix.
struct SymmetricEigen {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column i of `vectors` is the unit eigenvector for values[i].
  DenseMatrix vectors;
};

/// Diagonalizes symmetric `s` by cyclic Jacobi rotations. Off-diagonal mass
/// is reduced below 1e-14·‖S‖_F (or 60 sweeps, whichever first — in
/// practice ≤ 10 sweeps). `s` must be square and symmetric; asymmetry is a
/// caller bug and is CHECKed in debug builds.
SymmetricEigen SymmetricEigenDecompose(DenseMatrix s);

}  // namespace ensemfdet

#endif  // ENSEMFDET_LINALG_JACOBI_EIGEN_H_
