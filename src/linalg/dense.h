// Small dense linear-algebra kernels backing the truncated SVD.
//
// DenseMatrix is COLUMN-major: every algorithm here (Gram-Schmidt, subspace
// iteration, projections) operates on whole columns, so columns are kept
// contiguous. Matrices are tall-and-skinny (n × l with l ≲ 64), so O(n·l)
// storage is fine.
#ifndef ENSEMFDET_LINALG_DENSE_H_
#define ENSEMFDET_LINALG_DENSE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace ensemfdet {

/// Column-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  /// Zero-initialized rows × cols matrix.
  DenseMatrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0) {}

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  double& operator()(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(c * rows_ + r)];
  }
  double operator()(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(c * rows_ + r)];
  }

  /// Contiguous view of column c.
  std::span<double> col(int64_t c) {
    return {data_.data() + c * rows_, static_cast<size_t>(rows_)};
  }
  std::span<const double> col(int64_t c) const {
    return {data_.data() + c * rows_, static_cast<size_t>(rows_)};
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

/// <x, y> for equal-length spans.
double Dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm.
double Norm2(std::span<const double> x);

/// y += alpha * x.
void Axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void Scale(double alpha, std::span<double> x);

/// C = Aᵀ·A for column-major A (cols×cols symmetric Gram matrix).
DenseMatrix GramMatrix(const DenseMatrix& a);

/// B = A·W where W is small (A.cols × W.cols).
DenseMatrix MatMul(const DenseMatrix& a, const DenseMatrix& w);

}  // namespace ensemfdet

#endif  // ENSEMFDET_LINALG_DENSE_H_
