#include "linalg/jacobi_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace ensemfdet {

namespace {

double OffDiagonalFrobenius(const DenseMatrix& s) {
  double sum = 0.0;
  for (int64_t i = 0; i < s.rows(); ++i) {
    for (int64_t j = 0; j < s.cols(); ++j) {
      if (i != j) sum += s(i, j) * s(i, j);
    }
  }
  return std::sqrt(sum);
}

double FrobeniusNorm(const DenseMatrix& s) {
  double sum = 0.0;
  for (int64_t i = 0; i < s.rows(); ++i) {
    for (int64_t j = 0; j < s.cols(); ++j) sum += s(i, j) * s(i, j);
  }
  return std::sqrt(sum);
}

}  // namespace

SymmetricEigen SymmetricEigenDecompose(DenseMatrix s) {
  const int64_t n = s.rows();
  ENSEMFDET_CHECK(s.cols() == n) << "matrix must be square";
#ifndef NDEBUG
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      ENSEMFDET_DCHECK(std::abs(s(i, j) - s(j, i)) <=
                       1e-9 * (1.0 + std::abs(s(i, j))))
          << "matrix must be symmetric";
    }
  }
#endif

  DenseMatrix v(n, n);
  for (int64_t i = 0; i < n; ++i) v(i, i) = 1.0;

  const double norm = FrobeniusNorm(s);
  const double tolerance = 1e-14 * (norm > 0.0 ? norm : 1.0);
  constexpr int kMaxSweeps = 60;

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    if (OffDiagonalFrobenius(s) <= tolerance) break;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double apq = s(p, q);
        if (std::abs(apq) <= tolerance / (n * n + 1)) continue;
        double app = s(p, p), aqq = s(q, q);
        // Classic stable rotation computation (Golub & Van Loan §8.5).
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0.0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double sn = t * c;

        // Apply Jᵀ·S·J on rows/cols p,q.
        for (int64_t k = 0; k < n; ++k) {
          double skp = s(k, p), skq = s(k, q);
          s(k, p) = c * skp - sn * skq;
          s(k, q) = sn * skp + c * skq;
        }
        for (int64_t k = 0; k < n; ++k) {
          double spk = s(p, k), sqk = s(q, k);
          s(p, k) = c * spk - sn * sqk;
          s(q, k) = sn * spk + c * sqk;
        }
        // Accumulate eigenvectors: V = V·J.
        for (int64_t k = 0; k < n; ++k) {
          double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - sn * vkq;
          v(k, q) = sn * vkp + c * vkq;
        }
      }
    }
  }

  // Extract and sort descending by eigenvalue.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&s](int64_t a, int64_t b) { return s(a, a) > s(b, b); });

  SymmetricEigen result;
  result.values.resize(static_cast<size_t>(n));
  result.vectors = DenseMatrix(n, n);
  for (int64_t i = 0; i < n; ++i) {
    int64_t src = order[static_cast<size_t>(i)];
    result.values[static_cast<size_t>(i)] = s(src, src);
    for (int64_t k = 0; k < n; ++k) result.vectors(k, i) = v(k, src);
  }
  return result;
}

}  // namespace ensemfdet
