#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/qr.h"

namespace ensemfdet {

Result<TruncatedSvd> ComputeTruncatedSvd(const CsrMatrix& a, int k,
                                         const SvdOptions& options) {
  if (k < 1) return Status::InvalidArgument("SVD rank k must be >= 1");
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("SVD of an empty matrix");
  }
  const int64_t max_rank = std::min(a.rows(), a.cols());
  const int kept = static_cast<int>(std::min<int64_t>(k, max_rank));
  const int l = static_cast<int>(
      std::min<int64_t>(kept + std::max(0, options.oversample), max_rank));

  Rng rng(options.seed);

  // Random start block on the column side (V-side), n × l.
  DenseMatrix v(a.cols(), l);
  for (int64_t c = 0; c < l; ++c) {
    for (double& x : v.col(c)) x = rng.NextGaussian();
  }
  OrthonormalizeColumns(&v, &rng);

  // Subspace iteration: alternate U ← orth(A·V), V ← orth(Aᵀ·U).
  DenseMatrix u;
  const int rounds = std::max(1, options.power_iterations);
  for (int it = 0; it < rounds; ++it) {
    u = a.MultiplyDense(v);
    OrthonormalizeColumns(&u, &rng);
    v = a.MultiplyTransposeDense(u);
    OrthonormalizeColumns(&v, &rng);
  }

  // Rayleigh-Ritz on the converged V block: B = A·V (m×l), Gram G = BᵀB has
  // eigenpairs (σ², w); then σ·u = B·w and v = V·w.
  DenseMatrix b = a.MultiplyDense(v);
  SymmetricEigen eigen = SymmetricEigenDecompose(GramMatrix(b));

  TruncatedSvd out;
  out.sigma.resize(static_cast<size_t>(kept));
  out.u = DenseMatrix(a.rows(), kept);
  out.v = DenseMatrix(a.cols(), kept);

  DenseMatrix w(l, kept);
  for (int j = 0; j < kept; ++j) {
    for (int64_t i = 0; i < l; ++i) w(i, j) = eigen.vectors(i, j);
  }
  DenseMatrix u_scaled = MatMul(b, w);  // columns are σ_j·u_j
  DenseMatrix v_rot = MatMul(v, w);     // columns are v_j

  for (int j = 0; j < kept; ++j) {
    double lambda = std::max(0.0, eigen.values[static_cast<size_t>(j)]);
    double sigma = std::sqrt(lambda);
    out.sigma[static_cast<size_t>(j)] = sigma;
    auto src_v = v_rot.col(j);
    std::copy(src_v.begin(), src_v.end(), out.v.col(j).begin());
    auto src_u = u_scaled.col(j);
    auto dst_u = out.u.col(j);
    if (sigma > 1e-12) {
      for (size_t i = 0; i < src_u.size(); ++i) dst_u[i] = src_u[i] / sigma;
    } else {
      // Null direction: any unit vector completes the basis; zero keeps
      // downstream projections harmless.
      std::fill(dst_u.begin(), dst_u.end(), 0.0);
    }
  }
  return out;
}

}  // namespace ensemfdet
