// Truncated SVD of sparse matrices by randomized subspace iteration
// (Halko-Martinsson-Tropp style), built only on this library's own dense
// kernels — no LAPACK. This is the engine behind the SPOKEN and FBOX
// baselines, which consume the top-k singular triplets of the bipartite
// adjacency matrix.
//
// Algorithm: draw a random n×l Gaussian block (l = k + oversample), run
// `power_iterations` rounds of V ← orth(AᵀA·V) alternating with
// U ← orth(A·V), then solve the small l×l eigenproblem of (A·V)ᵀ(A·V) to
// extract singular values/vectors, keeping the top k. Orthonormalization
// after every product keeps the iteration numerically stable.
#ifndef ENSEMFDET_LINALG_SVD_H_
#define ENSEMFDET_LINALG_SVD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/dense.h"
#include "linalg/sparse_matrix.h"

namespace ensemfdet {

struct SvdOptions {
  /// Extra subspace columns beyond k; improves accuracy of the trailing
  /// computed triplets.
  int oversample = 10;
  /// Power-iteration rounds; each sharpens the spectral gap. 8 is plenty
  /// for ranking-quality singular vectors on adjacency matrices.
  int power_iterations = 8;
  /// Seed for the random test matrix.
  uint64_t seed = 0x5bd1e995;
};

/// A ≈ U·diag(sigma)·Vᵀ with U (m×k), V (n×k) orthonormal columns and
/// sigma descending.
struct TruncatedSvd {
  DenseMatrix u;
  DenseMatrix v;
  std::vector<double> sigma;

  int k() const { return static_cast<int>(sigma.size()); }
};

/// Computes the top-k singular triplets of `a`. k must be ≥ 1 and is
/// silently capped at min(rows, cols); fails with InvalidArgument for
/// k < 1 or an empty matrix.
Result<TruncatedSvd> ComputeTruncatedSvd(const CsrMatrix& a, int k,
                                         const SvdOptions& options = {});

}  // namespace ensemfdet

#endif  // ENSEMFDET_LINALG_SVD_H_
