// Sparse CSR matrix over doubles, specialized for bipartite adjacency
// matrices W ∈ R^{|U|×|V|} (users as rows, merchants as columns). This is
// the substrate SPOKEN and FBOX run their SVD on.
#ifndef ENSEMFDET_LINALG_SPARSE_MATRIX_H_
#define ENSEMFDET_LINALG_SPARSE_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"
#include "linalg/dense.h"

namespace ensemfdet {

/// Immutable CSR sparse matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from COO triplets (duplicates summed).
  CsrMatrix(int64_t rows, int64_t cols,
            std::span<const int64_t> coo_rows,
            std::span<const int64_t> coo_cols,
            std::span<const double> coo_vals);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(vals_.size()); }

  /// y = A·x  (x has cols() entries, y gets rows()).
  void Multiply(std::span<const double> x, std::span<double> y) const;

  /// y = Aᵀ·x  (x has rows() entries, y gets cols()).
  void MultiplyTranspose(std::span<const double> x, std::span<double> y) const;

  /// B = A·X for dense X (cols() × k) → (rows() × k).
  DenseMatrix MultiplyDense(const DenseMatrix& x) const;

  /// B = Aᵀ·X for dense X (rows() × k) → (cols() × k).
  DenseMatrix MultiplyTransposeDense(const DenseMatrix& x) const;

  /// ‖row i‖₂ for every row (used by FBOX to normalize reconstruction).
  std::vector<double> RowNorms() const;

  /// Squared Frobenius norm Σ a_ij².
  double FrobeniusNormSquared() const;

  std::span<const int64_t> row_offsets() const { return row_offsets_; }
  std::span<const int64_t> col_indices() const { return col_indices_; }
  std::span<const double> values() const { return vals_; }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_offsets_;  // rows_+1 entries
  std::vector<int64_t> col_indices_;  // nnz entries, sorted within a row
  std::vector<double> vals_;
};

/// Adjacency matrix of `graph` with users as rows: W[u][v] = edge weight
/// (1.0 for unweighted graphs).
CsrMatrix AdjacencyMatrix(const BipartiteGraph& graph);

}  // namespace ensemfdet

#endif  // ENSEMFDET_LINALG_SPARSE_MATRIX_H_
