#include "linalg/sparse_matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace ensemfdet {

CsrMatrix::CsrMatrix(int64_t rows, int64_t cols,
                     std::span<const int64_t> coo_rows,
                     std::span<const int64_t> coo_cols,
                     std::span<const double> coo_vals)
    : rows_(rows), cols_(cols) {
  ENSEMFDET_CHECK(coo_rows.size() == coo_cols.size() &&
                  coo_rows.size() == coo_vals.size());
  const size_t nnz_in = coo_rows.size();
  for (size_t i = 0; i < nnz_in; ++i) {
    ENSEMFDET_CHECK(coo_rows[i] >= 0 && coo_rows[i] < rows &&
                    coo_cols[i] >= 0 && coo_cols[i] < cols)
        << "triplet (" << coo_rows[i] << "," << coo_cols[i]
        << ") out of bounds";
  }

  // Sort triplet order by (row, col) to merge duplicates and build CSR.
  std::vector<size_t> order(nnz_in);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (coo_rows[a] != coo_rows[b]) return coo_rows[a] < coo_rows[b];
    return coo_cols[a] < coo_cols[b];
  });

  row_offsets_.assign(static_cast<size_t>(rows) + 1, 0);
  col_indices_.reserve(nnz_in);
  vals_.reserve(nnz_in);
  for (size_t i = 0; i < nnz_in;) {
    size_t a = order[i];
    double sum = coo_vals[a];
    size_t j = i + 1;
    while (j < nnz_in && coo_rows[order[j]] == coo_rows[a] &&
           coo_cols[order[j]] == coo_cols[a]) {
      sum += coo_vals[order[j]];
      ++j;
    }
    col_indices_.push_back(coo_cols[a]);
    vals_.push_back(sum);
    ++row_offsets_[static_cast<size_t>(coo_rows[a]) + 1];
    i = j;
  }
  for (int64_t r = 0; r < rows; ++r) {
    row_offsets_[static_cast<size_t>(r) + 1] +=
        row_offsets_[static_cast<size_t>(r)];
  }
}

void CsrMatrix::Multiply(std::span<const double> x,
                         std::span<double> y) const {
  ENSEMFDET_DCHECK(static_cast<int64_t>(x.size()) == cols_);
  ENSEMFDET_DCHECK(static_cast<int64_t>(y.size()) == rows_);
  for (int64_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (int64_t i = row_offsets_[static_cast<size_t>(r)];
         i < row_offsets_[static_cast<size_t>(r) + 1]; ++i) {
      sum += vals_[static_cast<size_t>(i)] *
             x[static_cast<size_t>(col_indices_[static_cast<size_t>(i)])];
    }
    y[static_cast<size_t>(r)] = sum;
  }
}

void CsrMatrix::MultiplyTranspose(std::span<const double> x,
                                  std::span<double> y) const {
  ENSEMFDET_DCHECK(static_cast<int64_t>(x.size()) == rows_);
  ENSEMFDET_DCHECK(static_cast<int64_t>(y.size()) == cols_);
  std::fill(y.begin(), y.end(), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    double xr = x[static_cast<size_t>(r)];
    if (xr == 0.0) continue;
    for (int64_t i = row_offsets_[static_cast<size_t>(r)];
         i < row_offsets_[static_cast<size_t>(r) + 1]; ++i) {
      y[static_cast<size_t>(col_indices_[static_cast<size_t>(i)])] +=
          vals_[static_cast<size_t>(i)] * xr;
    }
  }
}

DenseMatrix CsrMatrix::MultiplyDense(const DenseMatrix& x) const {
  ENSEMFDET_CHECK(x.rows() == cols_);
  DenseMatrix out(rows_, x.cols());
  for (int64_t c = 0; c < x.cols(); ++c) Multiply(x.col(c), out.col(c));
  return out;
}

DenseMatrix CsrMatrix::MultiplyTransposeDense(const DenseMatrix& x) const {
  ENSEMFDET_CHECK(x.rows() == rows_);
  DenseMatrix out(cols_, x.cols());
  for (int64_t c = 0; c < x.cols(); ++c) {
    MultiplyTranspose(x.col(c), out.col(c));
  }
  return out;
}

std::vector<double> CsrMatrix::RowNorms() const {
  std::vector<double> norms(static_cast<size_t>(rows_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (int64_t i = row_offsets_[static_cast<size_t>(r)];
         i < row_offsets_[static_cast<size_t>(r) + 1]; ++i) {
      sum += vals_[static_cast<size_t>(i)] * vals_[static_cast<size_t>(i)];
    }
    norms[static_cast<size_t>(r)] = std::sqrt(sum);
  }
  return norms;
}

double CsrMatrix::FrobeniusNormSquared() const {
  double sum = 0.0;
  for (double v : vals_) sum += v * v;
  return sum;
}

CsrMatrix AdjacencyMatrix(const BipartiteGraph& graph) {
  std::vector<int64_t> rows, cols;
  std::vector<double> vals;
  rows.reserve(static_cast<size_t>(graph.num_edges()));
  cols.reserve(static_cast<size_t>(graph.num_edges()));
  vals.reserve(static_cast<size_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    rows.push_back(graph.edge(e).user);
    cols.push_back(graph.edge(e).merchant);
    vals.push_back(graph.edge_weight(e));
  }
  return CsrMatrix(graph.num_users(), graph.num_merchants(), rows, cols,
                   vals);
}

}  // namespace ensemfdet
